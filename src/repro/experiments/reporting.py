"""Render regenerated figures as tables and terminal-friendly charts."""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.base import FigureResult

__all__ = [
    "format_table",
    "render_figure",
    "render_ascii_chart",
    "render_manifest",
    "render_quantiles",
]


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain monospace table with right-aligned numeric columns."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            if math.isnan(value):
                return "-"
            return f"{value:,.1f}" if abs(value) >= 10 else f"{value:.2f}"
        return str(value)

    grid = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in grid))
        if grid else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in grid:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_figure(figure: FigureResult, show_drop_rates: bool = False) -> str:
    """Render a figure as '<x> | <series...>' rows, paper-style."""
    xs = figure.series[0].x if figure.series else []
    headers = [figure.x_label] + [s.label for s in figure.series]
    rows = []
    for i, x in enumerate(xs):
        row: list[object] = [x]
        for series in figure.series:
            row.append(series.points[i].mean
                       if i < len(series.points) else math.nan)
        rows.append(row)
    parts = [
        f"Figure {figure.figure_id}: {figure.title}",
        f"(y = {figure.y_label})",
        format_table(headers, rows),
    ]
    if show_drop_rates:
        drop_rows = []
        for i, x in enumerate(xs):
            row = [x]
            for series in figure.series:
                row.append(series.points[i].drop_rate * 100.0
                           if i < len(series.points) else math.nan)
            drop_rows.append(row)
        parts.append("Server drop rates (%):")
        parts.append(format_table(headers, drop_rows))
    if figure.notes:
        parts.extend(f"note: {note}" for note in figure.notes)
    return "\n".join(parts)


def render_quantiles(figure: FigureResult) -> str:
    """Per-series response-time quantile table (p50/p90/p99 at each x).

    Returns an explanatory one-liner when the figure carries no quantiles
    (warm-up figures, or archives saved before schema version 2).
    """
    rows = []
    for series in figure.series:
        for i, x in enumerate(series.x):
            point = series.points[i]
            if point.p50 is None and point.p90 is None and point.p99 is None:
                continue
            rows.append((series.label, x, point.mean,
                         _mark(point.p50), _mark(point.p90), _mark(point.p99)))
    if not rows:
        return "(no quantile data — saved before schema version 2?)"
    headers = ("series", figure.x_label, "mean", "p50", "p90", "p99")
    return format_table(headers, rows)


def _mark(value) -> float:
    return math.nan if value is None else value


def render_manifest(manifest) -> str:
    """Summarize a run/sweep provenance manifest as 'key: value' lines.

    The (large) embedded config dict is reduced to its top-level keys;
    ``repro-broadcast report`` prints this under the figure tables.
    """
    if not manifest:
        return "(no manifest — saved before schema version 2?)"
    lines = []
    order = ("created_utc", "engine", "seed", "package", "package_version",
             "python_version", "numpy_version", "elapsed_seconds",
             "manifest_version")
    for key in order:
        if key in manifest:
            value = manifest[key]
            if key == "elapsed_seconds":
                value = f"{value:.2f}s"
            lines.append(f"  {key}: {value}")
    config = manifest.get("config")
    if isinstance(config, dict):
        summary = ", ".join(f"{k}={v}" for k, v in config.items()
                            if not isinstance(v, (dict, list)))
        nested = [k for k, v in config.items() if isinstance(v, (dict, list))]
        if summary:
            lines.append(f"  config: {summary}")
        if nested:
            lines.append(f"  config sections: {', '.join(nested)}")
    return "provenance:\n" + "\n".join(lines)


#: Plot glyphs cycled across series.
_MARKS = "*o+x#@%&"


def render_ascii_chart(figure: FigureResult, width: int = 68,
                       height: int = 18) -> str:
    """Plot a figure as an ASCII scatter chart (series share the canvas).

    X positions use the index of each x value (the paper's load axes are
    log-ish grids, so index spacing reads better than linear scaling);
    the y axis is linear from 0 to the maximum plotted value.
    """
    if width < 16 or height < 4:
        raise ValueError("chart must be at least 16x4")
    xs = figure.series[0].x if figure.series else []
    if not xs:
        return "(empty figure)"
    y_max = max((max(series.y) for series in figure.series if series.y),
                default=0.0)
    if y_max <= 0:
        y_max = 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(figure.series):
        mark = _MARKS[index % len(_MARKS)]
        for position, value in enumerate(series.y):
            if math.isnan(value):
                continue
            col = (position * (width - 1) // max(len(series.y) - 1, 1))
            row = height - 1 - round(value / y_max * (height - 1))
            grid[row][col] = mark
    lines = [f"Figure {figure.figure_id} — {figure.y_label} "
             f"(y max {y_max:,.0f})"]
    for row_index, row in enumerate(grid):
        label = f"{y_max * (height - 1 - row_index) / (height - 1):>9,.0f} |"
        lines.append(label + "".join(row))
    axis = " " * 10 + "+" + "-" * (width - 1)
    lines.append(axis)
    tick_line = [" "] * (width + 11)
    for position, x in enumerate(xs):
        col = 11 + position * (width - 1) // max(len(xs) - 1, 1)
        text = f"{x:g}"
        # Slide the final label left so it is never truncated.
        col = min(col, len(tick_line) - len(text))
        for offset, char in enumerate(text):
            tick_line[col + offset] = char
    lines.append("".join(tick_line).rstrip())
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={series.label}"
        for i, series in enumerate(figure.series))
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
