"""The Measured Client (MC) — the client whose performance is reported.

The MC runs a request–think loop: draw a page from its (possibly
Noise-perturbed) Zipf distribution, satisfy it from the cache if possible,
otherwise obtain it from the broadcast — optionally pulling it over the
backchannel — and sleep ``ThinkTime`` broadcast units after the page is in
hand.  The simulation engines drive the loop; this class holds the state
the loop shares: cache, sampler, statistics, and warm-up tracking.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.cache.base import Cache
from repro.sim.monitor import Tally
from repro.workload.zipf import ZipfSampler

__all__ = ["MeasuredClient", "WarmupTracker"]

#: Warm-up levels reported by Figure 4 (fractions of the target set).
WARMUP_LEVELS: tuple[float, ...] = (
    0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95)


class WarmupTracker:
    """Records when the cache first holds X% of its highest-valued pages."""

    def __init__(self, target: frozenset[int],
                 levels: Sequence[float] = WARMUP_LEVELS):
        if not target:
            raise ValueError("warm-up target set must be non-empty")
        self.target = target
        self.levels = tuple(sorted(levels))
        self.crossing_times: dict[float, float] = {}
        # The resident *set* (not a counter): re-inserting an already
        # resident target or evicting an absent one must be no-ops, so the
        # fraction can never overcount or go negative.
        self._resident: set[int] = set()
        self._next_level_index = 0

    @property
    def complete(self) -> bool:
        """True once the final level has been crossed."""
        return self._next_level_index >= len(self.levels)

    @property
    def fraction(self) -> float:
        """Current fraction of the target set resident."""
        return len(self._resident) / len(self.target)

    def on_insert(self, page: int, now: float) -> None:
        """Record that ``page`` entered the cache at ``now`` (idempotent)."""
        if page not in self.target or page in self._resident:
            return
        self._resident.add(page)
        fraction = self.fraction
        while (self._next_level_index < len(self.levels)
               and fraction >= self.levels[self._next_level_index]):
            self.crossing_times[self.levels[self._next_level_index]] = now
            self._next_level_index += 1

    def on_evict(self, page: int) -> None:
        """Record that ``page`` left the cache (no-op when not resident)."""
        self._resident.discard(page)


def _latency_histograms():
    """Fresh (all, miss) latency histograms.

    Imported lazily: ``repro.obs`` reaches back into the engines at
    package-import time, so a top-level import here would close a cycle.
    """
    from repro.obs.latency import LatencyHistogram

    return (LatencyHistogram("mc_latency_all"),
            LatencyHistogram("mc_latency_miss"))


class MeasuredClient:
    """State shared by both engines when driving the MC loop."""

    def __init__(self, probabilities: np.ndarray, cache: Cache,
                 think_time: float, rng: np.random.Generator,
                 warmup_target: Optional[frozenset[int]] = None):
        if think_time < 0:
            raise ValueError("think_time must be non-negative")
        self.probabilities = probabilities
        self.sampler = ZipfSampler(probabilities, rng)
        self.cache = cache
        self.think_time = think_time
        self.warmup: Optional[WarmupTracker] = (
            WarmupTracker(warmup_target) if warmup_target else None)
        #: Optional :class:`~repro.obs.requests.RequestTracer`; the
        #: engines attach it so both drive identical lifecycle hooks.
        self.tracer = None
        # Statistics for the current measurement phase.
        self.response_all = Tally()
        self.response_miss = Tally()
        self.latency_all, self.latency_miss = _latency_histograms()
        self.hits = 0
        self.misses = 0
        self.pulls_sent = 0
        self.accesses = 0
        self.measuring = False

    # -- the access protocol the engines follow ------------------------------
    def draw_page(self) -> int:
        """Draw the next page the MC wants."""
        return self.sampler.sample_one()

    def lookup(self, page: int, now: float) -> bool:
        """Check the cache; record a zero-delay response on a hit."""
        self.accesses += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.on_access(page, now, self.measuring)
        if self.cache.access(page, now):
            if self.measuring:
                self.hits += 1
                self.response_all.add(0.0)
                self.latency_all.observe(0.0)
            if tracer is not None:
                tracer.on_hit(page, now)
            return True
        if self.measuring:
            self.misses += 1
        if tracer is not None:
            tracer.on_miss(page, now)
        return False

    def record_pull_sent(self) -> None:
        """Count a backchannel request issued by the MC."""
        if self.measuring:
            self.pulls_sent += 1

    def receive(self, page: int, requested_at: float, now: float) -> None:
        """The awaited page arrived on the broadcast at time ``now``."""
        response_time = now - requested_at
        if response_time < 0:
            raise ValueError("page delivered before it was requested")
        if self.measuring:
            self.response_all.add(response_time)
            self.response_miss.add(response_time)
            self.latency_all.observe(response_time)
            self.latency_miss.observe(response_time)
        evicted = self.cache.insert(page, now)
        if self.warmup is not None:
            if evicted is not None:
                self.warmup.on_evict(evicted)
            self.warmup.on_insert(page, now)
        if self.tracer is not None:
            self.tracer.on_served(page, now)

    def reset_stats(self) -> None:
        """Clear tallies at the warm-up/measurement boundary."""
        self.response_all = Tally()
        self.response_miss = Tally()
        self.latency_all, self.latency_miss = _latency_histograms()
        self.hits = 0
        self.misses = 0
        self.pulls_sent = 0
        # Without this, the counter keeps warm-up/settle lookups and any
        # downstream ratio over it mixes phases.
        self.accesses = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of measured accesses that missed the cache."""
        total = self.hits + self.misses
        return self.misses / total if total else math.nan
