"""The Virtual Client (VC) — the rest of the client population.

The VC aggregates "an arbitrarily large client population" into one request
source (Section 3.1): a Poisson stream of rate
``ThinkTimeRatio / MCThinkTime`` requests per broadcast unit.  Each request
is tagged steady-state or warm-up by a coin weighted by ``SteadyStatePerc``:

- steady-state requests are filtered through a fully-warm cache — modelled
  as absorption by the static set of the ``CacheSize − 1`` highest-valued
  pages (Section 4.1.1),
- warm-up requests bypass the cache (an empty cache misses everything),

and every surviving request passes the threshold filter before reaching
the server's backchannel queue.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.client.threshold import ThresholdFilter
from repro.workload.access import AccessStream, think_time_rate
from repro.workload.zipf import ZipfSampler

__all__ = ["VirtualClient"]


class VirtualClient:
    """Aggregate request source for all clients other than the MC."""

    def __init__(self, probabilities: np.ndarray, steady_set: frozenset[int],
                 steady_state_perc: float, mc_think_time: float,
                 think_time_ratio: float,
                 threshold: Optional[ThresholdFilter],
                 rng: np.random.Generator):
        """Args:
            probabilities: the aggregate (server-view) access distribution.
            steady_set: pages a fully-warm cache holds (absorbs steady hits).
            steady_state_perc: fraction of represented clients in steady
                state (the paper's SteadyStatePerc).
            mc_think_time / think_time_ratio: define the request rate.
            threshold: ThresPerc filter, or None to skip filtering.
            rng: seeded generator (owns the Poisson and access draws).
        """
        self.rate = think_time_rate(mc_think_time, think_time_ratio)
        self.steady_set = steady_set
        self.threshold = threshold
        self._db_size = int(probabilities.size)
        self._rng = rng
        sampler = ZipfSampler(probabilities, rng)
        self._stream = AccessStream(sampler, steady_state_perc, rng)
        # Fast-path threshold lookup: a flat row-major distance table so the
        # hot loop does one array index instead of a per-page binary search.
        if threshold is not None and threshold.schedule is not None:
            table = threshold.schedule.distance_table(probabilities.size)
            self._cycle = table.shape[1]
            self._dist_flat = table.ravel()
            self._threshold_slots = threshold.threshold_slots
        else:
            self._cycle = 0
            self._dist_flat = None
            self._threshold_slots = 0.0
        # Accounting (cumulative; engines reset at phase boundaries).
        self.generated = 0
        self.absorbed_by_cache = 0
        self.filtered_by_threshold = 0

    def arrivals_in_slot(self) -> int:
        """Number of VC requests arriving during one broadcast slot."""
        return int(self._rng.poisson(self.rate))

    def arrivals_for_slots(self, count: int) -> list[int]:
        """Batched Poisson draws: requests arriving in each of ``count`` slots."""
        return self._rng.poisson(self.rate, count).tolist()

    def set_threshold_slots(self, threshold_slots: float) -> None:
        """Retune the fast-path threshold (adaptive controller hook)."""
        self._threshold_slots = threshold_slots

    def set_schedule(self, schedule) -> None:
        """Rebuild the flat distance table after a program reprogram.

        The cached table was derived from the schedule at construction;
        a reprogrammed server must refresh it or the threshold filter
        keeps judging distances against the dead program.
        """
        if self._dist_flat is None:
            raise ValueError("this client applies no threshold filter")
        table = schedule.distance_table(self._db_size)
        self._cycle = table.shape[1]
        self._dist_flat = table.ravel()

    def requests_for_slot(self, count: int,
                          schedule_pos: int) -> Iterator[int]:
        """Yield the pages (of ``count`` raw accesses) that reach the server.

        Applies the steady-state cache absorption and the threshold filter;
        the caller offers the survivors to the server queue in order.
        """
        stream_next = self._stream.next
        steady_set = self.steady_set
        dist_flat = self._dist_flat
        threshold_slots = self._threshold_slots
        base = schedule_pos % self._cycle if self._cycle else 0
        cycle = self._cycle
        self.generated += count
        for _ in range(count):
            page, steady = stream_next()
            if steady and page in steady_set:
                self.absorbed_by_cache += 1
                continue
            if (dist_flat is not None
                    and dist_flat[page * cycle + base] <= threshold_slots):
                self.filtered_by_threshold += 1
                continue
            yield page

    def reset_stats(self) -> None:
        """Zero the accounting counters (measurement-phase boundary)."""
        self.generated = 0
        self.absorbed_by_cache = 0
        self.filtered_by_threshold = 0
