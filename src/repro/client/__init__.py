"""Client-side machinery.

- :class:`~repro.client.threshold.ThresholdFilter` — the ThresPerc filter
  that suppresses pull requests for pages arriving soon on the push program,
- :class:`~repro.client.measured.MeasuredClient` — the single client whose
  performance the experiments report (dynamic cache, warm-up tracking),
- :class:`~repro.client.virtual.VirtualClient` — the aggregate model of
  every other client in the system (Poisson request stream, static
  steady-state cache filter).
"""

from repro.client.threshold import ThresholdFilter
from repro.client.measured import MeasuredClient, WarmupTracker
from repro.client.virtual import VirtualClient

__all__ = [
    "ThresholdFilter",
    "MeasuredClient",
    "WarmupTracker",
    "VirtualClient",
]
