"""Backchannel thresholding (Sections 2.3 and 4.2).

A client sends a pull request for a missed page only when the page's next
scheduled appearance lies *beyond* ``ThresPerc × MajorCycleSize`` push
slots.  This reserves the backchannel for the pages that would otherwise
incur the longest push latency; pages not on the push program at all have
infinite distance and always pass.

Because the client cannot know what the server will place in pull slots
(footnote 7), the distance is measured in positions of the periodic
program, not in wall-clock slots.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.broadcast.schedule import NOT_BROADCAST, Schedule

__all__ = ["ThresholdFilter"]


class ThresholdFilter:
    """Decides whether a missed page justifies a backchannel request."""

    def __init__(self, schedule: Optional[Schedule], thresh_perc: float):
        """Args:
            schedule: the push program; None means no program (Pure-Pull),
                in which case every page passes.
            thresh_perc: the threshold as a *fraction* of the major cycle
                (the paper's ThresPerc of 25% is 0.25 here).
        """
        if not 0.0 <= thresh_perc <= 1.0:
            raise ValueError(
                f"thresh_perc must be within [0, 1], got {thresh_perc}")
        self.schedule = schedule
        self.thresh_perc = thresh_perc
        if schedule is None:
            self.threshold_slots: float = 0.0
        else:
            self.threshold_slots = thresh_perc * len(schedule)

    def set_thresh_perc(self, thresh_perc: float) -> None:
        """Retune the threshold (used by the adaptive controller)."""
        if not 0.0 <= thresh_perc <= 1.0:
            raise ValueError(
                f"thresh_perc must be within [0, 1], got {thresh_perc}")
        self.thresh_perc = thresh_perc
        if self.schedule is not None:
            self.threshold_slots = thresh_perc * len(self.schedule)

    def set_schedule(self, schedule: Schedule) -> None:
        """Swap the push program (temperature-driven reprogramming).

        Distances are measured against the new program from here on;
        ``threshold_slots`` is recomputed in case the cycle length moved.
        """
        if self.schedule is None:
            raise ValueError("cannot reprogram a filter with no program")
        self.schedule = schedule
        self.threshold_slots = self.thresh_perc * len(schedule)

    def passes(self, page: int, schedule_pos: int) -> bool:
        """True if a pull request for ``page`` should be sent.

        ``schedule_pos`` is the server's current position in the periodic
        program.  The paper's rule is strict: request only if the distance
        exceeds the threshold, so with ThresPerc = 100% no page in the
        program is ever requested (everything arrives within one cycle).
        """
        if self.schedule is None:
            return True
        distance = self.schedule.distance(page, schedule_pos)
        return distance > self.threshold_slots

    def max_push_wait(self, page: int, schedule_pos: int) -> float:
        """Upper bound on the push wait for ``page`` in program positions.

        Infinite for pages not on the program — the "no safety net" case
        Experiment 3 highlights.  Request tracers record this as the
        predicted push wait for every miss, so a saved trace shows how
        much latency each pull actually avoided.
        """
        if self.schedule is None:
            return math.inf
        distance = self.schedule.distance(page, schedule_pos)
        return math.inf if distance >= NOT_BROADCAST else float(distance + 1)
