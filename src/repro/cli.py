"""Command-line interface: ``repro-broadcast`` / ``python -m repro``.

Subcommands:

- ``figures`` — regenerate one or all of the paper's figures and print
  the series as tables (optionally saving JSON and slot traces),
- ``simulate`` — run a single configured system and dump its metrics
  (``--metrics`` adds a metrics-registry snapshot via the same adapter
  the network server exports through),
- ``serve`` — serve one configured system over TCP with a wall-clock
  slot clock (``--self-test`` runs the loopback server+fleet sweep and
  checks the latency ordering against the simulator),
- ``loadgen`` — drive a running ``serve`` instance with a client fleet
  and report wall-clock latencies,
- ``trace`` — run one system with a tracer attached and write a trace
  (one record per broadcast slot, or per measured-client access with
  ``--requests``) as JSONL or columnar ``.npy`` (``--format``, or
  auto-detected from the output suffix),
- ``report`` — summarize a saved figure JSON (tables, quantiles,
  provenance) or a JSONL / columnar trace (wait breakdown) in the
  terminal,
- ``compare`` — diff two saved figure JSONs (same figure, different
  code versions) and flag series drift beyond replicate noise
  (Welch's t-test per point, tolerance fallback; exit 0 match /
  1 drift / 2 structural, see docs/COMPARE.md),
- ``fleet-sweep`` — sweep PullBW with a per-user client fleet and plot
  fairness statistics (per-user p99, wait dispersion, Jain's index);
  ``--parity`` instead validates a homogeneous fleet against its
  aggregate-VC equivalent through the compare harness (same exit-code
  contract; see docs/FLEET.md),
- ``sched-sweep`` — sweep PullBW once per pull-queue discipline (FIFO /
  RxW / LWF) with a client fleet attached, plotting mean response next
  to the fleet wait tail (p99 / max) so the discipline choice's effect
  under saturation is visible; emits compare-ready figure JSON (see
  docs/SCHEDULERS.md),
- ``convert`` — convert a trace between JSONL and columnar ``.npy``
  losslessly, in either direction,
- ``profile`` — run the fast engine with phase timers and print the
  per-phase wall-time breakdown,
- ``program`` — show a broadcast program's layout and analytic delays,
- ``tune`` — recommend IPP knob settings for a load range,
- ``lint`` — domain-aware static analysis (determinism, seed discipline,
  cross-engine parity; see docs/STATIC_ANALYSIS.md),
- ``sanitize`` — runtime determinism check: replay one configured system
  twice per engine (including once in a subprocess under a different
  ``PYTHONHASHSEED``) and diff the slot traces bit-exactly, reporting
  the first divergent slot (exit 0 deterministic / 1 divergence /
  2 error).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.algorithms import Algorithm
from repro.core.config import SystemConfig
from repro.core.fast import simulate
from repro.experiments import ALL_FIGURES, FULL, QUICK, Profile, render_figure
from repro.experiments.reporting import render_ascii_chart
from repro.obs.events import SCHEDULER_DISCIPLINES

__all__ = ["main", "build_parser"]


def _version() -> str:
    """Package version from installed metadata, source tree as fallback."""
    try:
        from importlib.metadata import version
        return version("repro")
    except Exception:  # pragma: no cover - metadata always present when installed
        from repro import __version__
        return __version__


def _add_system_args(parser: argparse.ArgumentParser) -> None:
    """The single-system knobs shared by simulate / trace / profile."""
    parser.add_argument("--algorithm", choices=[a.value for a in Algorithm],
                        default="ipp")
    parser.add_argument("--ttr", type=float, default=10.0,
                        help="ThinkTimeRatio (client population scale)")
    parser.add_argument("--pull-bw", type=float, default=0.5)
    parser.add_argument("--thresh-perc", type=float, default=0.0)
    parser.add_argument("--steady-state-perc", type=float, default=0.95)
    parser.add_argument("--noise", type=float, default=0.0)
    parser.add_argument("--chop", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--settle", type=int, default=4000)
    parser.add_argument("--measure", type=int, default=5000)
    parser.add_argument(
        "--fleet-clients", type=int, default=0, metavar="N",
        help="add a per-user client fleet of N individually tracked "
             "clients (0 = disabled; see docs/FLEET.md)")
    parser.add_argument(
        "--fleet-think-time", type=float, default=4000.0, metavar="UNITS",
        help="mean fleet-client think time in broadcast units")
    parser.add_argument(
        "--fleet-think-spread", type=float, default=0.0, metavar="FRAC",
        help="per-client think-time spread fraction in [0, 1]")
    parser.add_argument(
        "--fleet-offset-spread", type=int, default=0, metavar="PAGES",
        help="per-client popularity-ranking rotation drawn from [0, N]")
    parser.add_argument(
        "--fleet-cache-size", type=int, default=100, metavar="PAGES",
        help="fleet warm-cache size (steady-state absorption)")
    parser.add_argument(
        "--fleet-cache-spread", type=float, default=0.0, metavar="FRAC",
        help="per-client cache-size spread fraction in [0, 1]")


def _system_config(args) -> SystemConfig:
    """Build the configured system from simulate-style arguments.

    ``--figure`` (trace / profile only) swaps in that figure's
    representative sweep point; the run-scale knobs (--seed, --settle,
    --measure) still apply on top.
    """
    figure = getattr(args, "figure", None)
    if figure is not None:
        from repro.experiments.points import REPRESENTATIVE_POINTS

        config = REPRESENTATIVE_POINTS.get(figure)
        if config is None:
            known = ", ".join(sorted(REPRESENTATIVE_POINTS))
            raise SystemExit(f"unknown figure id {figure!r} (known: {known})")
    else:
        config = SystemConfig(algorithm=Algorithm(args.algorithm)).with_(
            client__think_time_ratio=args.ttr,
            client__steady_state_perc=args.steady_state_perc,
            client__noise=args.noise,
            server__pull_bw=args.pull_bw,
            server__thresh_perc=args.thresh_perc,
            server__chop=args.chop,
        )
    if getattr(args, "fleet_clients", 0):
        config = config.with_(
            fleet__num_clients=args.fleet_clients,
            fleet__think_time=args.fleet_think_time,
            fleet__think_time_spread=args.fleet_think_spread,
            fleet__zipf_offset_spread=args.fleet_offset_spread,
            fleet__cache_size=args.fleet_cache_size,
            fleet__cache_size_spread=args.fleet_cache_spread,
        )
    return config.with_(
        run__seed=args.seed,
        run__settle_accesses=args.settle,
        run__measure_accesses=args.measure,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-broadcast",
        description="Reproduction of 'Balancing Push and Pull for Data "
                    "Broadcast' (SIGMOD 1997)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser(
        "figures", help="regenerate the paper's figures")
    figures.add_argument(
        "ids", nargs="*", metavar="FIG",
        help=f"figure ids ({', '.join(ALL_FIGURES)}); default: all")
    figures.add_argument(
        "--full", action="store_true",
        help="paper-scale runs (slow); default is the quick profile")
    figures.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width for the sweeps (default: the profile's "
             "own width; --full uses every core)")
    figures.add_argument(
        "--seed", type=int, default=42, help="base RNG seed")
    figures.add_argument(
        "--json", type=Path, default=None, metavar="DIR",
        help="also write one JSON file per figure into DIR")
    figures.add_argument(
        "--trace", type=Path, default=None, metavar="DIR",
        help="also write a slot trace of each figure's representative "
             "point into DIR")
    figures.add_argument(
        "--trace-format", choices=("jsonl", "columnar"), default="jsonl",
        help="on-disk format for --trace captures (columnar = "
             "memory-mappable .npy; default: jsonl)")
    figures.add_argument(
        "--drop-rates", action="store_true",
        help="print server drop-rate tables as well")
    figures.add_argument(
        "--chart", action="store_true",
        help="also plot each figure as an ASCII chart")
    figures.add_argument(
        "--watch", action=argparse.BooleanOptionalAction, default=None,
        help="live sweep dashboard on stderr (completed/total replicates, "
             "running means, ETA); default: on when stderr is a tty")

    one = sub.add_parser("simulate", help="run one configured system")
    _add_system_args(one)
    one.add_argument(
        "--metrics", action="store_true",
        help="include a metrics-registry snapshot (same instrument names "
             "a live serve instance reports over STATS frames)")

    serve = sub.add_parser(
        "serve", help="serve one configured system over TCP (asyncio)")
    _add_system_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port to bind (default: 0 = ephemeral, printed at start)")
    serve.add_argument(
        "--slot-duration", type=float, default=0.005, metavar="SECONDS",
        help="wall-clock seconds per broadcast slot (default: 0.005)")
    serve.add_argument(
        "--slots", type=int, default=None, metavar="N",
        help="stop after N slots (default: run until interrupted; "
             "--self-test default: 2000)")
    serve.add_argument(
        "--send-queue", type=int, default=256, metavar="FRAMES",
        help="per-connection send-queue capacity (default: 256)")
    serve.add_argument(
        "--drop-after", type=int, default=64, metavar="FRAMES",
        help="consecutive shed frames before a slow client is dropped")
    serve.add_argument(
        "--self-test", action="store_true",
        help="loopback mode: server + client fleet in-process, swept over "
             "PullBW and checked against the simulator's p90 ordering")
    serve.add_argument(
        "--clients", type=int, default=200,
        help="(self-test) fleet size (default: 200)")
    serve.add_argument(
        "--think-time", type=float, default=200.0, metavar="UNITS",
        help="(self-test) mean client think time in broadcast units")
    serve.add_argument(
        "--stats-json", type=Path, default=None, metavar="FILE",
        help="write the final stats (self-test: figure-schema JSON that "
             "'report' renders) to FILE")
    serve.add_argument(
        "--watch", action="store_true",
        help="render a live stats dashboard to stderr once per second "
             "(slot, clients, queue, slot mix, net counters)")

    loadgen = sub.add_parser(
        "loadgen", help="drive a running serve instance with a client fleet")
    _add_system_args(loadgen)
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True,
                         help="the serve instance's TCP port")
    loadgen.add_argument(
        "--slot-duration", type=float, default=0.005, metavar="SECONDS",
        help="the server's nominal slot duration (used to convert think "
             "times; latencies are normalized by the observed duration)")
    loadgen.add_argument("--clients", type=int, default=200)
    loadgen.add_argument(
        "--think-time", type=float, default=200.0, metavar="UNITS",
        help="mean client think time in broadcast units (default: 200)")
    loadgen.add_argument(
        "--duration", type=float, default=10.0, metavar="SECONDS",
        help="how long to generate load (default: 10s)")
    loadgen.add_argument(
        "--settle-slots", type=int, default=0, metavar="N",
        help="exclude requests issued before server slot N")
    loadgen.add_argument(
        "--stats-json", type=Path, default=None, metavar="FILE",
        help="write the fleet's result JSON to FILE")
    loadgen.add_argument(
        "--watch", action="store_true",
        help="poll the server for STATS once per second and render a live "
             "dashboard to stderr while generating load")

    trace = sub.add_parser(
        "trace", help="run one system and write a slot-level JSONL trace")
    _add_system_args(trace)
    trace.add_argument(
        "--figure", default=None, metavar="FIG",
        help="trace this figure's representative sweep point instead of "
             "the --algorithm/--ttr/... knobs")
    trace.add_argument(
        "--engine", choices=("fast", "reference"), default="fast",
        help="which engine to trace (default: fast)")
    trace.add_argument(
        "--out", type=Path, default=Path("trace.jsonl"), metavar="FILE",
        help="output path (default: trace.jsonl)")
    trace.add_argument(
        "--requests", action="store_true",
        help="trace measured-client request lifecycles (one record per "
             "access) instead of broadcast slots")
    trace.add_argument(
        "--format", choices=("auto", "jsonl", "columnar"), default="auto",
        help="trace encoding: jsonl (text), columnar (memory-mappable "
             ".npy), or auto by --out suffix (default)")
    trace_sampling = trace.add_mutually_exclusive_group()
    trace_sampling.add_argument(
        "--sample-every", type=int, default=None, metavar="N",
        help="(--requests) trace 1 access in N deterministically; "
             "breakdown and quantiles are inverse-probability corrected")
    trace_sampling.add_argument(
        "--reservoir", type=int, default=None, metavar="K",
        help="(--requests) keep a seeded uniform reservoir of K records "
             "regardless of run length (seeded from --seed)")

    report = sub.add_parser(
        "report", help="summarize a saved figure JSON or JSONL trace")
    report.add_argument(
        "path", nargs="?", type=Path, default=None, metavar="FIGURE_JSON",
        help="a results/figure_*.json file to render")
    report.add_argument(
        "--trace", type=Path, default=None, metavar="FILE",
        help="summarize a JSONL or columnar .npy trace (slot or request "
             "records) instead")
    report.add_argument(
        "--think-time", type=float, default=None, metavar="UNITS",
        help="think time per access, to fill the think row of a request-"
             "trace wait breakdown")

    from repro.experiments.compare import DEFAULT_ALPHA, DEFAULT_TOLERANCE

    compare = sub.add_parser(
        "compare",
        help="diff two saved figure JSONs for drift beyond replicate noise")
    compare.add_argument("a", type=Path, metavar="A_JSON",
                         help="reference figure JSON (left side)")
    compare.add_argument("b", type=Path, metavar="B_JSON",
                         help="candidate figure JSON (right side)")
    compare.add_argument(
        "--alpha", type=float, default=DEFAULT_ALPHA,
        help="two-sided significance for the per-point Welch's t-test "
             f"on means (default: {DEFAULT_ALPHA})")
    compare.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="combined absolute/relative tolerance used when replicate "
             "noise is unavailable (v1 archives, single replicates, zero "
             "stddev) and for drop rates / quantiles "
             f"(default: {DEFAULT_TOLERANCE})")
    compare.add_argument(
        "--series", default=None, metavar="LABELS",
        help="comma-separated series labels to compare (default: all)")
    compare.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="report rendering (default: table)")

    fleet = sub.add_parser(
        "fleet-sweep",
        help="sweep PullBW with per-user fleet fairness statistics")
    fleet.add_argument(
        "--clients", type=int, default=10_000,
        help="fleet population per run (default: 10000)")
    fleet.add_argument(
        "--think-time", type=float, default=None, metavar="UNITS",
        help="mean client think time (default: scaled with --clients to a "
             "ThinkTimeRatio-25 aggregate load)")
    fleet.add_argument(
        "--homogeneous", action="store_true",
        help="disable the per-client heterogeneity spreads")
    fleet.add_argument(
        "--full", action="store_true",
        help="paper-scale runs (slow); default is the quick profile")
    fleet.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width for the sweep")
    fleet.add_argument("--seed", type=int, default=42,
                       help="base RNG seed")
    fleet.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="also write the figure (or parity report) JSON to FILE")
    fleet.add_argument(
        "--chart", action="store_true",
        help="also plot the figure as an ASCII chart")
    fleet.add_argument(
        "--parity", action="store_true",
        help="instead check a homogeneous fleet against its aggregate-VC "
             "equivalent (compare-harness exit codes: 0 parity / 1 drift "
             "/ 2 structural)")
    fleet.add_argument(
        "--parity-clients", type=int, default=200, metavar="N",
        help="(--parity) homogeneous fleet size (default: 200)")

    sched = sub.add_parser(
        "sched-sweep",
        help="sweep PullBW once per pull-queue discipline (FIFO/RxW/LWF)")
    sched.add_argument(
        "--disciplines", default=",".join(SCHEDULER_DISCIPLINES),
        metavar="LIST",
        help="comma-separated disciplines to sweep "
             f"(default: {','.join(SCHEDULER_DISCIPLINES)})")
    sched.add_argument(
        "--aging", type=float, default=1.0,
        help="RxW aging exponent (default: 1.0; 0 = pure waiter count)")
    sched.add_argument(
        "--clients", type=int, default=2000,
        help="fleet population per run (default: 2000)")
    sched.add_argument(
        "--full", action="store_true",
        help="paper-scale runs (slow); default is the quick profile")
    sched.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width for the sweep")
    sched.add_argument("--seed", type=int, default=42,
                       help="base RNG seed")
    sched.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="also write the figure JSON to FILE")
    sched.add_argument(
        "--chart", action="store_true",
        help="also plot the figure as an ASCII chart")

    convert = sub.add_parser(
        "convert", help="convert a trace between JSONL and columnar .npy")
    convert.add_argument(
        "src", type=Path, metavar="SRC",
        help="source trace (.jsonl or .npy)")
    convert.add_argument(
        "dst", type=Path, metavar="DST",
        help="destination trace (the other format; direction is chosen "
             "from the suffixes)")

    profile_cmd = sub.add_parser(
        "profile", help="time the fast engine's hot-loop phases")
    _add_system_args(profile_cmd)
    profile_cmd.add_argument(
        "--figure", default=None, metavar="FIG",
        help="profile this figure's representative sweep point")

    prog = sub.add_parser("program", help="inspect a broadcast program")
    prog.add_argument("--cache-size", type=int, default=100)
    prog.add_argument("--chop", type=int, default=0)
    prog.add_argument("--no-offset", action="store_true")

    tune = sub.add_parser(
        "tune", help="recommend IPP knob settings for a load range")
    tune.add_argument("--loads", default="10,50,250",
                      help="comma-separated ThinkTimeRatio range")
    tune.add_argument("--pull-bw", default="0.3,0.5",
                      help="comma-separated PullBW candidates")
    tune.add_argument("--thresh-perc", default="0,0.25,0.35",
                      help="comma-separated ThresPerc candidates")
    tune.add_argument("--chop", default="0",
                      help="comma-separated chop-depth candidates")
    tune.add_argument("--objective", choices=("worst_case", "mean"),
                      default="worst_case")
    tune.add_argument("--settle", type=int, default=500)
    tune.add_argument("--measure", type=int, default=800)
    tune.add_argument("--replicates", type=int, default=1)
    tune.add_argument("--seed", type=int, default=42)

    lint = sub.add_parser(
        "lint", help="domain static analysis: determinism, seeds, parity")
    from repro.lint.cli import add_arguments as add_lint_arguments

    add_lint_arguments(lint)

    sanitize = sub.add_parser(
        "sanitize",
        help="runtime determinism check: replay a config per engine and "
             "diff the slot traces bit-exactly")
    _add_system_args(sanitize)
    sanitize.add_argument(
        "--figure", default=None, metavar="FIG",
        help="sanitize this figure's representative sweep point instead "
             "of the --algorithm/--ttr/... knobs")
    sanitize.add_argument(
        "--engine", choices=("both", "fast", "reference"), default="both",
        help="which engine(s) to replay (default: both)")
    sanitize.add_argument(
        "--hash-seed", default=None, metavar="SEED",
        help="PYTHONHASHSEED for the subprocess replay (default: 31337)")
    sanitize.add_argument(
        "--no-hashseed", action="store_true",
        help="skip the subprocess replay (in-process replays only)")
    sanitize.add_argument(
        "--inject-divergence", type=int, default=None, metavar="SLOT",
        help="self-test hook: perturb the in-process replay from SLOT "
             "onward, proving the diff trips and names the slot")
    sanitize.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report rendering (default: text)")

    return parser


def _write_request_trace(config: SystemConfig, path: Path,
                         engine: str = "fast", fmt: str = "auto",
                         sampling=None) -> int:
    """Request-trace ``config`` into a file; prints the breakdown."""
    from repro.experiments.tracing import write_request_trace

    tracer = write_request_trace(config, path, engine=engine, fmt=fmt,
                                 sampling=sampling)
    print(tracer.breakdown().render())
    quantiles = tracer.wait_quantiles()
    if quantiles:
        print("measured miss wait quantiles: "
              + "  ".join(f"{k}={v:.1f}" for k, v in quantiles.items()))
    if sampling is not None:
        meta = sampling.describe()
        print(f"sampling: {meta['policy']} kept {meta['sampled']} of "
              f"{meta['seen']} accesses (aggregates are weighted "
              f"estimates)")
    return tracer.records_emitted


def _cmd_figures(args) -> int:
    ids = args.ids or list(ALL_FIGURES)
    unknown = [i for i in ids if i not in ALL_FIGURES]
    if unknown:
        print(f"unknown figure id(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    base = FULL if args.full else QUICK
    profile = Profile(
        settle_accesses=base.settle_accesses,
        measure_accesses=base.measure_accesses,
        replicates=base.replicates,
        workers=args.workers if args.workers is not None else base.workers,
        base_seed=args.seed,
    )
    if args.json is not None:
        args.json.mkdir(parents=True, exist_ok=True)
    if args.trace is not None:
        args.trace.mkdir(parents=True, exist_ok=True)
    watch = (sys.stderr.isatty() if args.watch is None else args.watch)
    for fig_id in ids:
        # lint: allow[REP001] -- wall-clock elapsed time for user-facing
        started = time.perf_counter()
        if watch:
            from repro.experiments.base import sweep_progress
            from repro.obs.dashboard import Dashboard, SweepMonitor

            monitor = SweepMonitor(dashboard=Dashboard(),
                                   title=f"figure {fig_id}")
            with sweep_progress(monitor):
                figure = ALL_FIGURES[fig_id](profile)
            monitor.finish()
        else:
            figure = ALL_FIGURES[fig_id](profile)
        # lint: allow[REP001] -- figure-regeneration reporting, not sim time
        elapsed = time.perf_counter() - started
        if figure.manifest is not None:
            figure.manifest["elapsed_seconds"] = elapsed
        print(render_figure(figure, show_drop_rates=args.drop_rates))
        if args.chart:
            print()
            print(render_ascii_chart(figure))
        print(f"[figure {fig_id} regenerated in {elapsed:.1f}s]\n")
        if args.json is not None:
            path = args.json / f"figure_{fig_id}.json"
            path.write_text(json.dumps(figure.to_dict(), indent=2))
        if args.trace is not None:
            from repro.experiments.tracing import trace_representative

            trace_path, emitted = trace_representative(
                fig_id, profile, args.trace, fmt=args.trace_format)
            print(f"[trace {fig_id}: {emitted} slot records -> "
                  f"{trace_path}]\n")
    return 0


def _cmd_simulate(args) -> int:
    config = _system_config(args)
    if not args.metrics:
        print(json.dumps(simulate(config).to_dict(), indent=2))
        return 0
    from repro.core.fast import FastEngine
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.server_metrics import bind_server_metrics

    engine = FastEngine(config)
    result = engine.run()
    registry = MetricsRegistry()
    bind_server_metrics(registry, engine.state.server)
    if engine.state.fleet is not None:
        from repro.fleet.metrics import bind_fleet_metrics

        bind_fleet_metrics(registry, engine.state.fleet)
    output = result.to_dict()
    output["metrics"] = registry.snapshot()
    print(json.dumps(output, indent=2))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    config = _system_config(args)
    if args.self_test:
        from repro.experiments.reporting import render_figure as render
        from repro.net.selftest import SelfTestSettings, run_selftest

        settings = SelfTestSettings(
            num_clients=args.clients,
            slots=args.slots if args.slots is not None else 2000,
            slot_duration=args.slot_duration,
            think_time=args.think_time,
            seed=args.seed,
        )
        result = run_selftest(config, settings)
        if args.stats_json is not None:
            args.stats_json.parent.mkdir(parents=True, exist_ok=True)
            args.stats_json.write_text(
                json.dumps(result.figure.to_dict(), indent=2))
            print(f"[self-test figure JSON -> {args.stats_json}]")
        print(render(result.figure))
        for diag in result.diagnostics:
            fleet = diag["fleet"]
            print(f"  pull_bw={diag['pull_bw']:g}: "
                  f"{fleet['measured_latencies']} measured latencies, "
                  f"{fleet['censored']} censored, "
                  f"effective slot {fleet['effective_slot_duration']:.4g}s")
        verdict = "matches" if result.ordering_ok else "DOES NOT match"
        print(f"self-test: wall-clock p90 ordering {verdict} the "
              f"simulator's (fleet={result.fleet_p90}, "
              f"sim={result.sim_p90})")
        return 0 if result.ok else 1

    from repro.net.server import NetServer, NetServerSettings

    async def _serve():
        server = NetServer(config, NetServerSettings(
            host=args.host, port=args.port,
            slot_duration=args.slot_duration,
            send_queue_frames=args.send_queue,
            drop_after=args.drop_after,
            max_slots=args.slots))
        await server.start()
        print(f"serving {config.algorithm.value} on "
              f"{args.host}:{server.port} "
              f"(slot {args.slot_duration}s"
              + (f", {args.slots} slots)" if args.slots else ")"),
              flush=True)
        watch_task = None
        if args.watch:
            from repro.obs.dashboard import Dashboard, render_stats_frame

            dashboard = Dashboard(interval=0.0)

            async def _watch():
                title = f"serve :{server.port}"
                while True:
                    await asyncio.sleep(1.0)
                    dashboard.show(
                        render_stats_frame(server.stats_snapshot(), title),
                        force=True)

            watch_task = asyncio.create_task(_watch())
        try:
            if args.slots is not None:
                await server.wait_finished()
            else:
                await asyncio.Event().wait()  # until interrupted
            return server.stats_snapshot()
        finally:
            if watch_task is not None:
                watch_task.cancel()
            await server.stop()

    try:
        stats = asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    if args.stats_json is not None:
        args.stats_json.parent.mkdir(parents=True, exist_ok=True)
        args.stats_json.write_text(json.dumps(stats, indent=2))
        print(f"[stats JSON -> {args.stats_json}]")
    else:
        print(json.dumps(stats, indent=2))
    return 0


def _cmd_loadgen(args) -> int:
    import asyncio

    from repro.net.client import ClientFleet, FleetSettings

    config = _system_config(args)

    async def _drive():
        fleet = ClientFleet(
            config, args.host, args.port, args.slot_duration,
            FleetSettings(num_clients=args.clients,
                          think_time=args.think_time,
                          settle_slots=args.settle_slots),
            seed=args.seed)
        await fleet.start()
        if not args.watch:
            await asyncio.sleep(args.duration)
            return await fleet.stop(fetch_stats=True)
        from repro.obs.dashboard import Dashboard, render_stats_frame

        dashboard = Dashboard(interval=0.0)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + args.duration
        title = f"loadgen -> {args.host}:{args.port}"
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            await asyncio.sleep(min(1.0, remaining))
            stats = await fleet.fetch_stats()
            if stats is None:  # every connection is down
                continue
            # Fleet-side metrics share the frame with the server's stats,
            # so one dashboard shows both ends of the wire.
            stats = dict(stats)
            stats.setdefault("metrics", {}).update(
                fleet.registry.snapshot())
            dashboard.show(render_stats_frame(stats, title), force=True)
        return await fleet.stop(fetch_stats=True)

    try:
        result = asyncio.run(_drive())
    except ConnectionRefusedError:
        print(f"loadgen: nothing listening on {args.host}:{args.port} "
              f"(start 'repro-broadcast serve' first)", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    output = result.to_dict()
    if args.stats_json is not None:
        args.stats_json.parent.mkdir(parents=True, exist_ok=True)
        args.stats_json.write_text(json.dumps(output, indent=2))
        print(f"[fleet JSON -> {args.stats_json}]")
    print(json.dumps({k: v for k, v in output.items()
                      if k != "server_stats"}, indent=2))
    return 0


def _cmd_trace(args) -> int:
    config = _system_config(args)
    if (args.sample_every is not None or args.reservoir is not None) \
            and not args.requests:
        print("trace: --sample-every/--reservoir require --requests "
              "(slot traces are not sampled)", file=sys.stderr)
        return 2
    if args.requests:
        sampling = None
        if args.sample_every is not None:
            from repro.obs.sampling import EveryNSampling

            sampling = EveryNSampling(args.sample_every)
        elif args.reservoir is not None:
            from repro.obs.sampling import ReservoirSampling

            sampling = ReservoirSampling(args.reservoir, seed=args.seed)
        emitted = _write_request_trace(config, args.out, engine=args.engine,
                                       fmt=args.format, sampling=sampling)
        print(f"{emitted} request records -> {args.out}")
    else:
        from repro.experiments.tracing import write_slot_trace

        emitted = write_slot_trace(config, args.out, engine=args.engine,
                                   fmt=args.format)
        print(f"{emitted} slot records -> {args.out}")
    return 0


def _cmd_compare(args) -> int:
    from repro.experiments.compare import compare_files
    from repro.experiments.reporting import render_compare

    series = None
    if args.series is not None:
        series = [label.strip() for label in args.series.split(",")
                  if label.strip()]
    try:
        comparison = compare_files(args.a, args.b, alpha=args.alpha,
                                   tolerance=args.tolerance, series=series)
    except (OSError, ValueError) as exc:
        print(f"compare: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(comparison.to_dict(), indent=2))
    else:
        print(render_compare(comparison))
    return comparison.exit_code


def _cmd_fleet_sweep(args) -> int:
    from repro.fleet import fleet_parity_report, fleet_sweep_figure

    base = FULL if args.full else QUICK
    profile = Profile(
        settle_accesses=base.settle_accesses,
        measure_accesses=base.measure_accesses,
        replicates=base.replicates,
        workers=args.workers if args.workers is not None else base.workers,
        base_seed=args.seed,
    )
    if args.parity:
        report = fleet_parity_report(profile,
                                     num_clients=args.parity_clients)
        if args.json is not None:
            args.json.parent.mkdir(parents=True, exist_ok=True)
            args.json.write_text(json.dumps(report, indent=2))
            print(f"[parity report JSON -> {args.json}]")
        verdict = report["comparison"]["verdict"]
        print(f"fleet parity: {args.parity_clients} homogeneous clients "
              f"vs aggregate VC (ThinkTimeRatio "
              f"{report['ttr_base']:g}+{report['fleet_ttr']:g})")
        print("  aggregate VC response: "
              + "  ".join(f"{y:.1f}" for y in report["aggregate_response"]))
        print("  fleet response:        "
              + "  ".join(f"{y:.1f}" for y in report["fleet_response"]))
        print(f"  response curves: {verdict}")
        print(f"  closed-loop rate: worst error "
              f"{report['worst_rate_error']:.2%} "
              f"(tolerance {report['rate_tolerance']:.0%}) -> "
              f"{'ok' if report['rate_ok'] else 'FAIL'}")
        print(f"  PullBW ordering preserved: "
              f"{'yes' if report['ordering_ok'] else 'NO'}")
        return report["exit_code"]

    figure = fleet_sweep_figure(
        profile, num_clients=args.clients, think_time=args.think_time,
        heterogeneous=not args.homogeneous)
    print(render_figure(figure))
    if args.chart:
        print()
        print(render_ascii_chart(figure))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(figure.to_dict(), indent=2))
        print(f"[figure JSON -> {args.json}]")
    return 0


def _cmd_sched_sweep(args) -> int:
    from repro.experiments.schedulers import (
        discipline_summary,
        render_summary,
        sched_sweep_figure,
    )

    disciplines = tuple(d.strip() for d in args.disciplines.split(",")
                        if d.strip())
    unknown = [d for d in disciplines if d not in SCHEDULER_DISCIPLINES]
    if not disciplines or unknown:
        print(f"sched-sweep: unknown discipline(s) "
              f"{', '.join(unknown) or '(none given)'} "
              f"(choose from {', '.join(SCHEDULER_DISCIPLINES)})",
              file=sys.stderr)
        return 2
    base = FULL if args.full else QUICK
    profile = Profile(
        settle_accesses=base.settle_accesses,
        measure_accesses=base.measure_accesses,
        replicates=base.replicates,
        workers=args.workers if args.workers is not None else base.workers,
        base_seed=args.seed,
    )
    figure = sched_sweep_figure(profile, disciplines=disciplines,
                                aging=args.aging, num_clients=args.clients)
    print(render_figure(figure))
    summary = discipline_summary(figure)
    print(f"\nat PullBW {figure.series[0].x[0]:g} (most saturated point):")
    print(render_summary(summary))
    if args.chart:
        print()
        print(render_ascii_chart(figure))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(figure.to_dict(), indent=2))
        print(f"[figure JSON -> {args.json}]")
    return 0


def _cmd_convert(args) -> int:
    from repro.obs.columnar import columnar_to_jsonl, jsonl_to_columnar

    if (args.src.suffix == ".npy") == (args.dst.suffix == ".npy"):
        print("convert: exactly one of SRC/DST must be a columnar .npy "
              "trace (the other is treated as JSONL)", file=sys.stderr)
        return 2
    try:
        if args.src.suffix == ".npy":
            args.dst.parent.mkdir(parents=True, exist_ok=True)
            count = columnar_to_jsonl(args.src, args.dst)
        else:
            args.dst.parent.mkdir(parents=True, exist_ok=True)
            count = jsonl_to_columnar(args.src, args.dst)
    except (FileNotFoundError, ValueError) as exc:
        print(f"convert: {exc}", file=sys.stderr)
        return 2
    print(f"{count} records: {args.src} -> {args.dst}")
    return 0


def _report_columnar_trace(path: Path, think_time) -> int:
    """Summarize a columnar ``.npy`` trace without materializing records.

    Prints the same lines as the JSONL path — breakdowns via the
    vectorized column reductions, quantiles as exact order statistics
    (same rank convention as the sorted-list path, so a converted trace
    reports identically).
    """
    import numpy as np

    from repro.obs.columnar import (
        breakdown_of_array,
        exact_quantiles,
        load_columnar,
        measured_miss_waits,
        slot_summary,
        table_of,
    )

    try:
        array = load_columnar(path)
    except (FileNotFoundError, ValueError) as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 2
    if array.shape[0] == 0:
        print(f"{path}: empty trace")
        return 2
    if table_of(array) == "request":
        measured = int(np.count_nonzero(array["measured"]))
        print(f"request trace: {array.shape[0]} records "
              f"({measured} measured) from {path}")
        print()
        print(breakdown_of_array(array, think_time=think_time).render())
        waits = measured_miss_waits(array)
        if waits.size:
            marks = exact_quantiles(waits)
            assert marks is not None
            print(f"measured miss wait quantiles: p50={marks['p50']:.1f}  "
                  f"p90={marks['p90']:.1f}  p99={marks['p99']:.1f}  "
                  f"max={waits.max():.1f}")
        return 0
    summary = slot_summary(array)
    print(f"slot trace: {summary['slots']} slots from {path}")
    print("  slots by kind: "
          + ", ".join(f"{k}={v}" for k, v in sorted(summary["kinds"].items())))
    print(f"  mean queue depth: {summary['mean_queue_depth']:.2f}")
    print(f"  requests dropped: {summary['dropped']}")
    return 0


def _report_trace(path: Path, think_time) -> int:
    """Summarize a trace file (slot or request records, either format)."""
    if path.suffix == ".npy":
        return _report_columnar_trace(path, think_time)
    first = None
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                first = json.loads(line)
                break
    if first is None:
        print(f"{path}: empty trace")
        return 2
    if "issued_at" in first:  # request-lifecycle records
        from repro.obs.requests import breakdown_of, read_requests_jsonl

        records = read_requests_jsonl(path)
        measured = [r for r in records if r.measured]
        print(f"request trace: {len(records)} records "
              f"({len(measured)} measured) from {path}")
        print()
        print(breakdown_of(records, think_time=think_time).render())
        waits = sorted(r.wait for r in measured if not r.hit)
        if waits:
            def rank(q: float) -> float:
                return waits[min(len(waits) - 1, int(q * len(waits)))]

            print(f"measured miss wait quantiles: p50={rank(0.50):.1f}  "
                  f"p90={rank(0.90):.1f}  p99={rank(0.99):.1f}  "
                  f"max={waits[-1]:.1f}")
        return 0
    if "slot" in first:  # slot records
        from collections import Counter

        from repro.obs.trace import read_jsonl

        records = read_jsonl(path)
        kinds = Counter(r.kind for r in records)
        depth = (sum(r.queue_depth for r in records) / len(records)
                 if records else 0.0)
        print(f"slot trace: {len(records)} slots from {path}")
        print("  slots by kind: "
              + ", ".join(f"{k}={v}" for k, v in sorted(kinds.items())))
        print(f"  mean queue depth: {depth:.2f}")
        if records:
            print(f"  requests dropped: {records[-1].dropped}")
        return 0
    print(f"{path}: unrecognized trace record "
          f"(keys: {', '.join(sorted(first))})", file=sys.stderr)
    return 2


def _cmd_report(args) -> int:
    if (args.path is None) == (args.trace is None):
        print("report: give exactly one of FIGURE_JSON or --trace FILE",
              file=sys.stderr)
        return 2
    if args.trace is not None:
        return _report_trace(args.trace, args.think_time)
    from repro.experiments.base import load_figure
    from repro.experiments.reporting import render_manifest, render_quantiles

    figure = load_figure(args.path)
    print(render_figure(figure))
    print()
    print("response-time quantiles (per series point):")
    print(render_quantiles(figure))
    print()
    print(render_manifest(figure.manifest))
    return 0


def _cmd_profile(args) -> int:
    from repro.obs.profile import profile_run

    config = _system_config(args)
    result, prof = profile_run(config)
    print(prof.render())
    print()
    print(f"response_miss mean : {result.response_miss.mean:.2f} "
          f"broadcast units over {result.response_miss.count} misses")
    print(f"drop rate          : {result.drop_rate:.1%}")
    return 0


def _cmd_program(args) -> int:
    from repro.core.build import build_push_program
    from repro.workload.zipf import zipf_probabilities

    config = SystemConfig(algorithm=Algorithm.IPP).with_(
        client__cache_size=args.cache_size,
        server__offset=not args.no_offset,
        server__chop=args.chop,
    )
    probs = zipf_probabilities(config.server.db_size,
                               config.client.zipf_theta)
    schedule = build_push_program(config, probs)
    assert schedule is not None
    print(f"major cycle: {len(schedule)} slots "
          f"({schedule.num_empty_slots} padding)")
    assert schedule.assignment is not None
    for index, disk in enumerate(schedule.assignment.disks, start=1):
        sample = ", ".join(str(p) for p in disk.pages[:5])
        print(f"disk {index}: {disk.size} pages @ rel_freq "
              f"{disk.rel_freq} (hottest: {sample}, ...)")
    for page in (0, 100, 500, 999):
        if page in schedule:
            print(f"page {page}: freq {schedule.frequency(page)}/cycle, "
                  f"E[delay] = {schedule.expected_delay(page):.1f}")
        else:
            print(f"page {page}: not broadcast (pull only)")
    return 0


def _cmd_sanitize(args) -> int:
    from repro.lint.sanitize import DEFAULT_HASH_SEED, sanitize_config

    if args.no_hashseed and args.hash_seed is not None:
        print("sanitize: --hash-seed and --no-hashseed are mutually "
              "exclusive", file=sys.stderr)
        return 2
    config = _system_config(args)
    engines = (("fast", "reference") if args.engine == "both"
               else (args.engine,))
    hash_seed = (None if args.no_hashseed
                 else args.hash_seed or DEFAULT_HASH_SEED)
    try:
        report = sanitize_config(
            config, engines=engines, hash_seed=hash_seed,
            inject_divergence=args.inject_divergence)
    except RuntimeError as exc:
        print(f"sanitize: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _cmd_tune(args) -> int:
    from repro.experiments.base import Profile
    from repro.tuning import TuningSpec, recommend

    def floats(text):
        return tuple(float(v) for v in text.split(",") if v)

    spec = TuningSpec(
        loads=floats(args.loads),
        pull_bw_grid=floats(args.pull_bw),
        thresh_grid=floats(args.thresh_perc),
        chop_grid=tuple(int(v) for v in args.chop.split(",") if v),
        objective=args.objective,
    )
    profile = Profile(settle_accesses=args.settle,
                      measure_accesses=args.measure,
                      replicates=args.replicates,
                      base_seed=args.seed)
    report = recommend(SystemConfig(algorithm=Algorithm.IPP), spec, profile)
    print(report.format())
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "fleet-sweep":
        return _cmd_fleet_sweep(args)
    if args.command == "sched-sweep":
        return _cmd_sched_sweep(args)
    if args.command == "convert":
        return _cmd_convert(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "lint":
        from repro.lint.cli import run as run_lint_cli

        return run_lint_cli(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    return _cmd_program(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
