"""Command-line interface: ``repro-broadcast`` / ``python -m repro``.

Subcommands:

- ``figures`` — regenerate one or all of the paper's figures and print
  the series as tables (optionally saving JSON),
- ``simulate`` — run a single configured system and dump its metrics,
- ``program`` — show a broadcast program's layout and analytic delays.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.algorithms import Algorithm
from repro.core.config import SystemConfig
from repro.core.fast import simulate
from repro.experiments import ALL_FIGURES, FULL, QUICK, Profile, render_figure
from repro.experiments.reporting import render_ascii_chart

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-broadcast",
        description="Reproduction of 'Balancing Push and Pull for Data "
                    "Broadcast' (SIGMOD 1997)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser(
        "figures", help="regenerate the paper's figures")
    figures.add_argument(
        "ids", nargs="*", metavar="FIG",
        help=f"figure ids ({', '.join(ALL_FIGURES)}); default: all")
    figures.add_argument(
        "--full", action="store_true",
        help="paper-scale runs (slow); default is the quick profile")
    figures.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width for the sweeps")
    figures.add_argument(
        "--seed", type=int, default=42, help="base RNG seed")
    figures.add_argument(
        "--json", type=Path, default=None, metavar="DIR",
        help="also write one JSON file per figure into DIR")
    figures.add_argument(
        "--drop-rates", action="store_true",
        help="print server drop-rate tables as well")
    figures.add_argument(
        "--chart", action="store_true",
        help="also plot each figure as an ASCII chart")

    one = sub.add_parser("simulate", help="run one configured system")
    one.add_argument("--algorithm", choices=[a.value for a in Algorithm],
                     default="ipp")
    one.add_argument("--ttr", type=float, default=10.0,
                     help="ThinkTimeRatio (client population scale)")
    one.add_argument("--pull-bw", type=float, default=0.5)
    one.add_argument("--thresh-perc", type=float, default=0.0)
    one.add_argument("--steady-state-perc", type=float, default=0.95)
    one.add_argument("--noise", type=float, default=0.0)
    one.add_argument("--chop", type=int, default=0)
    one.add_argument("--seed", type=int, default=0)
    one.add_argument("--settle", type=int, default=4000)
    one.add_argument("--measure", type=int, default=5000)

    prog = sub.add_parser("program", help="inspect a broadcast program")
    prog.add_argument("--cache-size", type=int, default=100)
    prog.add_argument("--chop", type=int, default=0)
    prog.add_argument("--no-offset", action="store_true")

    tune = sub.add_parser(
        "tune", help="recommend IPP knob settings for a load range")
    tune.add_argument("--loads", default="10,50,250",
                      help="comma-separated ThinkTimeRatio range")
    tune.add_argument("--pull-bw", default="0.3,0.5",
                      help="comma-separated PullBW candidates")
    tune.add_argument("--thresh-perc", default="0,0.25,0.35",
                      help="comma-separated ThresPerc candidates")
    tune.add_argument("--chop", default="0",
                      help="comma-separated chop-depth candidates")
    tune.add_argument("--objective", choices=("worst_case", "mean"),
                      default="worst_case")
    tune.add_argument("--settle", type=int, default=500)
    tune.add_argument("--measure", type=int, default=800)
    tune.add_argument("--replicates", type=int, default=1)
    tune.add_argument("--seed", type=int, default=42)

    return parser


def _cmd_figures(args) -> int:
    ids = args.ids or list(ALL_FIGURES)
    unknown = [i for i in ids if i not in ALL_FIGURES]
    if unknown:
        print(f"unknown figure id(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    base = FULL if args.full else QUICK
    profile = Profile(
        settle_accesses=base.settle_accesses,
        measure_accesses=base.measure_accesses,
        replicates=base.replicates,
        workers=args.workers,
        base_seed=args.seed,
    )
    if args.json is not None:
        args.json.mkdir(parents=True, exist_ok=True)
    for fig_id in ids:
        started = time.perf_counter()
        figure = ALL_FIGURES[fig_id](profile)
        elapsed = time.perf_counter() - started
        print(render_figure(figure, show_drop_rates=args.drop_rates))
        if args.chart:
            print()
            print(render_ascii_chart(figure))
        print(f"[figure {fig_id} regenerated in {elapsed:.1f}s]\n")
        if args.json is not None:
            path = args.json / f"figure_{fig_id}.json"
            path.write_text(json.dumps(figure.to_dict(), indent=2))
    return 0


def _cmd_simulate(args) -> int:
    config = SystemConfig(algorithm=Algorithm(args.algorithm)).with_(
        client__think_time_ratio=args.ttr,
        client__steady_state_perc=args.steady_state_perc,
        client__noise=args.noise,
        server__pull_bw=args.pull_bw,
        server__thresh_perc=args.thresh_perc,
        server__chop=args.chop,
        run__seed=args.seed,
        run__settle_accesses=args.settle,
        run__measure_accesses=args.measure,
    )
    result = simulate(config)
    print(json.dumps(result.to_dict(), indent=2))
    return 0


def _cmd_program(args) -> int:
    from repro.core.build import build_push_program
    from repro.workload.zipf import zipf_probabilities

    config = SystemConfig(algorithm=Algorithm.IPP).with_(
        client__cache_size=args.cache_size,
        server__offset=not args.no_offset,
        server__chop=args.chop,
    )
    probs = zipf_probabilities(config.server.db_size,
                               config.client.zipf_theta)
    schedule = build_push_program(config, probs)
    assert schedule is not None
    print(f"major cycle: {len(schedule)} slots "
          f"({schedule.num_empty_slots} padding)")
    assert schedule.assignment is not None
    for index, disk in enumerate(schedule.assignment.disks, start=1):
        sample = ", ".join(str(p) for p in disk.pages[:5])
        print(f"disk {index}: {disk.size} pages @ rel_freq "
              f"{disk.rel_freq} (hottest: {sample}, ...)")
    for page in (0, 100, 500, 999):
        if page in schedule:
            print(f"page {page}: freq {schedule.frequency(page)}/cycle, "
                  f"E[delay] = {schedule.expected_delay(page):.1f}")
        else:
            print(f"page {page}: not broadcast (pull only)")
    return 0


def _cmd_tune(args) -> int:
    from repro.experiments.base import Profile
    from repro.tuning import TuningSpec, recommend

    def floats(text):
        return tuple(float(v) for v in text.split(",") if v)

    spec = TuningSpec(
        loads=floats(args.loads),
        pull_bw_grid=floats(args.pull_bw),
        thresh_grid=floats(args.thresh_perc),
        chop_grid=tuple(int(v) for v in args.chop.split(",") if v),
        objective=args.objective,
    )
    profile = Profile(settle_accesses=args.settle,
                      measure_accesses=args.measure,
                      replicates=args.replicates,
                      base_seed=args.seed)
    report = recommend(SystemConfig(algorithm=Algorithm.IPP), spec, profile)
    print(report.format())
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "tune":
        return _cmd_tune(args)
    return _cmd_program(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
