"""Fairness statistics over per-user outcomes.

A mean response time can hide a population where a few clients starve:
the PullBW sweeps read identically in aggregate while the tail user waits
an order of magnitude longer than the median.  Jain's fairness index is
the standard scalar for this — 1.0 when every user experiences the same
wait, approaching ``1/n`` as one user dominates.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["jain_index"]


def jain_index(values) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    Args:
        values: per-user non-negative quantities (e.g. mean waits).

    Returns:
        A value in ``(0, 1]``; 1.0 for a perfectly even allocation
        (including the all-zero one — nobody waits is perfectly fair),
        NaN for an empty population.

    Raises:
        ValueError: on negative or non-finite inputs — the index is only
            meaningful over non-negative allocations.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        return math.nan
    if not np.isfinite(arr).all():
        raise ValueError("non-finite value in fairness input")
    if (arr < 0).any():
        raise ValueError("negative value in fairness input")
    sum_sq = float(np.square(arr).sum())
    if sum_sq == 0.0:
        return 1.0
    total = float(arr.sum())
    return total * total / (arr.size * sum_sq)
