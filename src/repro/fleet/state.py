"""The vectorized per-user client fleet: struct-of-arrays population.

The paper aggregates everyone but the Measured Client into one Virtual
Client, so per-user experience is invisible.  :class:`FleetState` keeps
``num_clients`` *individually tracked* clients as parallel numpy arrays
(the same struct-of-arrays move that made the columnar trace backend fast)
and advances all of them one broadcast slot at a time:

- **generate** — clients whose next access falls inside the slot draw one
  batched Zipf rank each; steady warm caches absorb the most-valuable
  prefix by boolean mask; survivors pass the same flat distance-table
  threshold check the Virtual Client uses and either offer a pull or wait
  silently for the push program,
- **deliver** — the slot's frontchannel page completes every client
  waiting on it (clients snoop, exactly like the MC), accumulating the
  per-user wait statistics the fairness metrics are computed from.

Each client is closed-loop: it thinks (exponential, per-client mean),
accesses, waits for its page, and only then thinks again — so the fleet's
aggregate request rate is ``N / (T + W)`` with ``W`` the mean wait, which
approaches the Virtual Client's open-loop ``N / T`` when ``T >> W``
(docs/FLEET.md quantifies the parity).

Heterogeneity knobs (all optional): per-client think-time means, cache
sizes, and a rotation of the page-popularity ranking (``zipf_offset``),
drawn once at construction from the seeded fleet generator.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.client.threshold import ThresholdFilter
from repro.fleet.fairness import jain_index
from repro.workload.zipf import ZipfSampler

__all__ = ["FleetState"]

#: Shared empty result for slots generating no backchannel candidates.
_NO_PAGES = np.empty(0, dtype=np.int64)


class FleetState:
    """Struct-of-arrays population of individually tracked clients."""

    def __init__(self, *, num_clients: int, mean_think_time: float,
                 think_time_spread: float, zipf_offset_spread: int,
                 cache_size: int, cache_size_spread: float,
                 steady_state_perc: float, probabilities: np.ndarray,
                 value_order: np.ndarray,
                 threshold: Optional[ThresholdFilter],
                 rng: np.random.Generator):
        """Args:
            num_clients: population size (must be positive; a zero-client
                fleet is represented by ``SystemState.fleet is None``).
            mean_think_time: base mean think time in broadcast units.
            think_time_spread: fraction of uniform per-client spread
                around the base mean (0 = homogeneous).
            zipf_offset_spread: per-client popularity-ranking rotations
                drawn uniformly from ``[0, spread]`` (0 = homogeneous).
            cache_size: base warm-cache size; absorption models the
                paper's steady-state filter (the ``c - 1`` most valuable
                pages of a size-``c`` cache).
            cache_size_spread: fraction of uniform per-client cache-size
                spread (0 = homogeneous).
            steady_state_perc: fraction of clients with warm caches
                (the paper's SteadyStatePerc, applied per client).
            probabilities: aggregate access distribution (page id == rank).
            value_order: ``value_positions(...)`` array — each page's
                position in the most-valuable-first ordering; a client's
                warm cache absorbs positions below its cache size - 1.
            threshold: ThresPerc filter, or None to skip filtering.
            rng: seeded generator (owns every fleet draw).
        """
        if num_clients < 1:
            raise ValueError("num_clients must be positive")
        if mean_think_time <= 0:
            raise ValueError("mean_think_time must be positive")
        n = num_clients
        self.num_clients = n
        self._db_size = int(probabilities.size)
        self._sampler = ZipfSampler(probabilities, rng)
        self._rng = rng

        # Static per-client attributes, drawn unconditionally (in a fixed
        # order) so toggling one heterogeneity knob never shifts the draw
        # sequence of another.
        self.offsets = rng.integers(0, zipf_offset_spread + 1, size=n)
        self.think_means = mean_think_time * (
            1.0 + think_time_spread * (2.0 * rng.random(n) - 1.0))
        sizes = np.rint(cache_size * (
            1.0 + cache_size_spread * (2.0 * rng.random(n) - 1.0)))
        self.cache_sizes = np.maximum(sizes.astype(np.int64), 0)
        self.steady = rng.random(n) < steady_state_perc
        #: Value-order positions a warm cache absorbs: the paper's
        #: steady-state model holds the cache-size - 1 most valuable pages.
        self._absorb_limit = np.maximum(self.cache_sizes - 1, 0)
        self._value_order = np.asarray(value_order, dtype=np.int64)

        # Dynamic state.  A waiting client has next_access = +inf and its
        # awaited page in ``outstanding``; idle clients carry the time of
        # their next access.  The first access is a stationary exponential
        # gap so the population does not start synchronized.
        self.next_access = rng.exponential(self.think_means)
        self.outstanding = np.full(n, -1, dtype=np.int64)
        self.requested_at = np.zeros(n, dtype=np.float64)
        #: Waiting clients grouped by awaited page — delivery completes
        #: one page's group in O(group), never an O(N) scan per slot.
        self._waiting_by_page: dict[int, list[int]] = {}

        # Per-user wait accumulators (reset at the measurement boundary).
        self.wait_sum = np.zeros(n, dtype=np.float64)
        self.wait_count = np.zeros(n, dtype=np.int64)
        self.wait_max = np.zeros(n, dtype=np.float64)
        # Aggregate accounting (same reset discipline).
        self.generated = 0
        self.absorbed_by_cache = 0
        self.filtered_by_threshold = 0
        self.offered = 0
        self.delivered = 0

        # Flat distance-table fast path, shared with the Virtual Client:
        # one array index per threshold check instead of a binary search.
        if threshold is not None and threshold.schedule is not None:
            table = threshold.schedule.distance_table(self._db_size)
            self._cycle = table.shape[1]
            self._dist_flat = table.ravel()
            self._threshold_slots = threshold.threshold_slots
        else:
            self._cycle = 0
            self._dist_flat = None
            self._threshold_slots = 0.0

    # -- the per-slot protocol the engines drive -----------------------------
    def deliver(self, page: int, now: float) -> None:
        """The frontchannel page transmitted last slot completes at ``now``.

        Every client waiting on ``page`` receives it (snooping — push or
        pull, requested or filtered), records its wait, and draws a fresh
        think time.
        """
        waiters = self._waiting_by_page.pop(page, None)
        if not waiters:
            return
        idx = np.asarray(waiters, dtype=np.int64)
        waits = now - self.requested_at[idx]
        self.delivered += idx.size
        self.wait_sum[idx] += waits
        self.wait_count[idx] += 1
        self.wait_max[idx] = np.maximum(self.wait_max[idx], waits)
        self.outstanding[idx] = -1
        self.next_access[idx] = now + self._rng.exponential(
            self.think_means[idx])

    def generate(self, t: int, schedule_pos: int) -> np.ndarray:
        """Process every access falling inside slot ``[t, t+1)``.

        Returns the pages that should reach the backchannel queue (in
        access order): misses that survived cache absorption and the
        threshold filter.  The engine offers them — or discards them when
        the algorithm has no backchannel — while filtered/unoffered
        clients still wait for the push program, and absorbed accesses
        complete instantly as zero-wait cache hits.
        """
        horizon = t + 1.0
        due = np.flatnonzero(self.next_access < horizon)
        if due.size == 0:
            return _NO_PAGES
        out: list[np.ndarray] = []
        while due.size:
            ranks = self._sampler.sample(due.size)
            now = self.next_access[due]
            self.generated += int(due.size)
            absorbed = self.steady[due] & (
                self._value_order[ranks] < self._absorb_limit[due])

            hit_idx = due[absorbed]
            if hit_idx.size:
                self.absorbed_by_cache += int(hit_idx.size)
                self.wait_count[hit_idx] += 1  # zero-wait completion
                self.next_access[hit_idx] = (
                    now[absorbed]
                    + self._rng.exponential(self.think_means[hit_idx]))

            miss_idx = due[~absorbed]
            if miss_idx.size:
                # The client's rank-space draw maps to a wire page by its
                # personal rotation of the popularity ranking.
                pages = (ranks[~absorbed] + self.offsets[miss_idx]) \
                    % self._db_size
                self.outstanding[miss_idx] = pages
                self.requested_at[miss_idx] = now[~absorbed]
                self.next_access[miss_idx] = math.inf
                if self._dist_flat is not None:
                    base = schedule_pos % self._cycle
                    filtered = (self._dist_flat[pages * self._cycle + base]
                                <= self._threshold_slots)
                    self.filtered_by_threshold += int(filtered.sum())
                    send = pages[~filtered]
                else:
                    send = pages
                self.offered += int(send.size)
                if send.size:
                    out.append(send)
                waiting = self._waiting_by_page
                for client, page in zip(miss_idx.tolist(), pages.tolist()):
                    waiting.setdefault(page, []).append(client)

            # Only clients that just completed (hits) can come due again
            # within this slot; everyone else is waiting or thinking past
            # the horizon — no second O(N) scan.
            due = (hit_idx[self.next_access[hit_idx] < horizon]
                   if hit_idx.size else hit_idx)
        if not out:
            return _NO_PAGES
        return out[0] if len(out) == 1 else np.concatenate(out)

    def set_threshold_slots(self, threshold_slots: float) -> None:
        """Retune the fast-path threshold (adaptive controller hook)."""
        self._threshold_slots = threshold_slots

    def set_schedule(self, schedule) -> None:
        """Rebuild the flat distance table after a program reprogram.

        Mirrors :meth:`repro.client.virtual.VirtualClient.set_schedule`:
        the cached table is construction-time state and must follow the
        live program or threshold checks judge the dead one.
        """
        if self._dist_flat is None:
            raise ValueError("this fleet applies no threshold filter")
        table = schedule.distance_table(self._db_size)
        self._cycle = table.shape[1]
        self._dist_flat = table.ravel()

    def reset_stats(self) -> None:
        """Zero the wait accumulators (measurement-phase boundary).

        Client positions and in-flight waits are retained — a client
        already waiting keeps its request time, so its eventual wait
        lands in the measured phase exactly as the MC's does.
        """
        self.wait_sum[:] = 0.0
        self.wait_count[:] = 0
        self.wait_max[:] = 0.0
        self.generated = 0
        self.absorbed_by_cache = 0
        self.filtered_by_threshold = 0
        self.offered = 0
        self.delivered = 0

    # -- statistics ----------------------------------------------------------
    def user_mean_waits(self) -> np.ndarray:
        """Per-user mean wait over users with at least one completion.

        Cache hits count as zero-wait completions, so a user served
        entirely from cache contributes a mean of 0 — fairness is over
        *experienced* waits, not only broadcast deliveries.
        """
        measured = self.wait_count > 0
        return self.wait_sum[measured] / self.wait_count[measured]

    def snapshot(self) -> dict:
        """Per-user wait statistics as a JSON-ready dict.

        Per-user quantiles run through the existing
        :class:`~repro.obs.latency.LatencyHistogram` machinery (one
        vectorized ``observe_many`` batch over the per-user means).
        Clients still waiting when the run ends are censored — counted in
        ``still_waiting``, not in the wait statistics.
        """
        # Lazy import: repro.obs reaches back into the engines at package
        # import time, and the engines' build path constructs fleets.
        from repro.obs.latency import LatencyHistogram

        means = self.user_mean_waits()
        total_count = int(self.wait_count.sum())
        stats: dict = {
            "num_clients": self.num_clients,
            "users_measured": int(means.size),
            "still_waiting": int((self.outstanding >= 0).sum()),
            "generated": self.generated,
            "absorbed": self.absorbed_by_cache,
            "filtered": self.filtered_by_threshold,
            "offered": self.offered,
            "delivered": self.delivered,
            "mean_wait": (float(self.wait_sum.sum() / total_count)
                          if total_count else math.nan),
            "max_wait": (float(self.wait_max.max())
                         if total_count else math.nan),
        }
        if means.size:
            hist = LatencyHistogram("fleet_user_wait")
            hist.observe_many(means)
            quantiles = hist.quantiles() or {}
            stats.update({
                "user_wait_mean": float(means.mean()),
                "user_wait_min": float(means.min()),
                "user_wait_max": float(means.max()),
                "user_wait_p50": quantiles.get("p50", math.nan),
                "user_wait_p90": quantiles.get("p90", math.nan),
                "user_wait_p99": quantiles.get("p99", math.nan),
                "jain_index": jain_index(means),
            })
        else:
            stats.update({name: math.nan for name in (
                "user_wait_mean", "user_wait_min", "user_wait_max",
                "user_wait_p50", "user_wait_p90", "user_wait_p99",
                "jain_index")})
        return stats
