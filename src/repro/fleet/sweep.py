"""Fleet experiments: fairness sweeps and aggregate-parity validation.

Two entry points:

- :func:`fleet_sweep_figure` — the paper's PullBW sweep re-run with a
  heterogeneous per-user fleet, plotting fairness (per-user wait
  dispersion, p99, Jain's index) instead of only the aggregate mean.
  Every series comes from the *same* runs
  (:func:`~repro.experiments.base.sweep_series_multi`).
- :func:`fleet_parity_report` — the model check behind the fleet: a
  *homogeneous* fleet is, in aggregate, the paper's Virtual Client.  A
  fleet of ``N`` clients with think time ``T`` presents the load of a VC
  ThinkTimeRatio of ``N * MCThinkTime / T``, so the MC's response-time
  curve must match a VC-only run with that extra ratio folded in — the
  two sweeps are diffed through the noise-aware compare harness (same
  exit-code contract), plus a closed-loop request-rate check
  (``rate == N / (T + mean wait)``) and the PullBW response-time
  ordering.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.core.algorithms import Algorithm
from repro.core.config import SystemConfig
from repro.core.metrics import RunResult
from repro.experiments.base import (
    FigureResult,
    FigureSeries,
    Profile,
    sweep_series,
    sweep_series_multi,
)
from repro.experiments.compare import FigureComparison, compare_figures
from repro.obs.manifest import sweep_manifest

__all__ = [
    "FAIRNESS_METRICS",
    "PAPER_PULL_BWS",
    "PARITY_PULL_BWS",
    "fleet_sweep_figure",
    "fleet_parity_report",
]

#: Table 3's PullBW grid (the x axis of Figures 3a/6a/6b).
PAPER_PULL_BWS: tuple[float, ...] = (0.10, 0.20, 0.30, 0.40, 0.50)


def _fleet_stat(name: str) -> Callable[[RunResult], float]:
    def metric(result: RunResult) -> float:
        if result.fleet is None:
            raise ValueError("run carried no fleet statistics")
        return float(result.fleet[name])
    return metric


#: The fairness series plotted per sweep point, all from the same runs.
FAIRNESS_METRICS: Mapping[str, Callable[[RunResult], float]] = {
    "mean user wait": _fleet_stat("user_wait_mean"),
    "p99 user wait": _fleet_stat("user_wait_p99"),
    "max user wait": _fleet_stat("user_wait_max"),
    "min user wait": _fleet_stat("user_wait_min"),
    "jain index": _fleet_stat("jain_index"),
}


def fleet_sweep_figure(profile: Profile, *, num_clients: int = 10_000,
                       pull_bws: Sequence[float] = PAPER_PULL_BWS,
                       think_time: Optional[float] = None,
                       heterogeneous: bool = True) -> FigureResult:
    """Sweep PullBW with per-user fairness statistics on the y axis.

    Args:
        profile: run-scale knobs (``QUICK`` / ``FULL``).
        num_clients: fleet population per run.
        pull_bws: the swept PullBW grid.
        think_time: mean client think time; defaults to scaling with the
            population so the fleet presents a ThinkTimeRatio-25
            aggregate load regardless of ``num_clients``.
        heterogeneous: draw per-client think-time / cache-size /
            access-pattern spreads (the interesting case); ``False``
            gives the homogeneous population parity checks use.
    """
    base = SystemConfig(algorithm=Algorithm.IPP)
    if think_time is None:
        # Fixed aggregate load: rate = num_clients / think_time
        # = 25 / MCThinkTime, the paper's mid-range ThinkTimeRatio.
        think_time = base.client.think_time * num_clients / 25.0
    base = base.with_(
        fleet__num_clients=num_clients,
        fleet__think_time=think_time,
        fleet__think_time_spread=0.5 if heterogeneous else 0.0,
        fleet__zipf_offset_spread=50 if heterogeneous else 0,
        fleet__cache_size_spread=0.5 if heterogeneous else 0.0,
    )
    xs = [float(bw) for bw in pull_bws]
    configs = [base.with_(server__pull_bw=bw) for bw in xs]
    series = sweep_series_multi(FAIRNESS_METRICS, configs, xs, profile,
                                label="fleet-pullbw")
    population = ("heterogeneous" if heterogeneous else "homogeneous")
    return FigureResult(
        figure_id="fleet-pullbw",
        title=(f"Per-user wait vs PullBW, {population} fleet of "
               f"{num_clients} clients (IPP)"),
        x_label="PullBW",
        y_label="Response time (broadcast units) / Jain index",
        series=series,
        notes=[
            f"fleet think time {think_time:g} broadcast units "
            f"(aggregate load = ThinkTimeRatio "
            f"{num_clients * base.client.think_time / think_time:g})",
            "per-user statistics cover users with at least one completed "
            "access in the measured phase; cache hits count as zero wait",
        ],
        manifest=sweep_manifest(profile),
    )


def _strip_quantiles(series: FigureSeries) -> FigureSeries:
    """Drop per-point response quantiles before a parity comparison.

    Quantile marks carry no recorded spread, so the compare harness holds
    them to the raw tolerance — far too tight for the tail of a few
    hundred stochastic accesses.  Parity is a claim about the *mean*
    curve; with both sides' quantiles absent the harness skips them.
    """
    return FigureSeries(
        label=series.label, x=list(series.x),
        points=[replace(p, p50=None, p90=None, p99=None)
                for p in series.points])


def _ranking(values: Sequence[float]) -> list[int]:
    """Index order sorted by value (the curve's shape as a permutation)."""
    return sorted(range(len(values)), key=values.__getitem__)


#: The parity grid: Table 3's PullBW values minus 0.30, which at the
#: check's total load (ThinkTimeRatio 15) sits exactly on the saturation
#: cliff — response time there swings by tens of broadcast units with the
#: seed, on both sides of the comparison, so the point tests noise rather
#: than parity.  Both stable branches (saturated 0.10/0.20, unsaturated
#: 0.40/0.50) are kept.
PARITY_PULL_BWS: tuple[float, ...] = (0.10, 0.20, 0.40, 0.50)


def fleet_parity_report(profile: Profile, *, num_clients: int = 200,
                        fleet_ttr: float = 5.0, ttr_base: float = 10.0,
                        pull_bws: Sequence[float] = PARITY_PULL_BWS,
                        alpha: float = 1e-3, tolerance: float = 0.25,
                        rate_tolerance: float = 0.05) -> dict[str, Any]:
    """Check a homogeneous fleet against its aggregate-VC equivalent.

    Runs two PullBW sweeps at identical total load: (a) VC-only with
    ``ThinkTimeRatio = ttr_base + fleet_ttr``, and (b) VC at ``ttr_base``
    plus a homogeneous fleet sized to present exactly the missing
    ``fleet_ttr`` of load (``think_time = MCThinkTime * num_clients /
    fleet_ttr``).  Three verdicts feed the exit code:

    - the MC response curves must agree under the compare harness
      (Welch's t-test over replicates, tolerance fallback),
    - the fleet's measured request rate must match the closed-loop
      prediction ``N / (T + mean wait)`` within ``rate_tolerance``,
    - the PullBW ordering of the response curve must be preserved.

    Returns a JSON-ready dict; ``exit_code`` follows the compare
    contract (0 = parity, 1 = drift, 2 = structural).
    """
    base = SystemConfig(algorithm=Algorithm.IPP)
    mc_think = base.client.think_time
    fleet_think = mc_think * num_clients / fleet_ttr
    aggregate = base.with_(client__think_time_ratio=ttr_base + fleet_ttr)
    fleeted = base.with_(
        client__think_time_ratio=ttr_base,
        fleet__num_clients=num_clients,
        fleet__think_time=fleet_think,
        fleet__cache_size=base.client.cache_size,
    )
    xs = [float(bw) for bw in pull_bws]
    label = "mc response"
    series_a = sweep_series(
        label, [aggregate.with_(server__pull_bw=bw) for bw in xs], xs,
        profile)
    series_b = sweep_series(
        label, [fleeted.with_(server__pull_bw=bw) for bw in xs], xs,
        profile)

    def figure(series: FigureSeries, population: str) -> FigureResult:
        return FigureResult(
            figure_id="fleet-parity",
            title=f"MC response vs PullBW ({population})",
            x_label="PullBW", y_label="Response time (broadcast units)",
            series=[_strip_quantiles(series)],
            manifest=sweep_manifest(profile),
        )

    comparison: FigureComparison = compare_figures(
        figure(series_a, "aggregate VC"), figure(series_b, "fleet"),
        alpha=alpha, tolerance=tolerance,
        left="aggregate-vc", right="homogeneous-fleet")

    # Closed-loop rate check over every fleet run of the sweep.
    rate_checks = []
    for x, point in zip(series_b.x, series_b.points):
        for run in point.results:
            assert run.fleet is not None
            observed = run.fleet["generated"] / run.measured_slots
            expected = num_clients / (fleet_think + run.fleet["mean_wait"])
            rate_checks.append({
                "pull_bw": x, "seed": run.seed,
                "observed_rate": observed, "expected_rate": expected,
                "relative_error": abs(observed / expected - 1.0),
            })
    worst_rate = max((c["relative_error"] for c in rate_checks),
                     default=float("nan"))
    rate_ok = bool(rate_checks) and worst_rate <= rate_tolerance

    ordering_ok = _ranking(series_a.y) == _ranking(series_b.y)

    exit_code = comparison.exit_code
    if exit_code == 0 and not (rate_ok and ordering_ok):
        exit_code = 1
    return {
        "num_clients": num_clients,
        "fleet_think_time": fleet_think,
        "fleet_ttr": fleet_ttr,
        "ttr_base": ttr_base,
        "aggregate_response": list(series_a.y),
        "fleet_response": list(series_b.y),
        "comparison": comparison.to_dict(),
        "rate_checks": rate_checks,
        "worst_rate_error": worst_rate,
        "rate_tolerance": rate_tolerance,
        "rate_ok": rate_ok,
        "ordering_ok": ordering_ok,
        "exit_code": exit_code,
    }
