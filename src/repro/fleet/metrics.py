"""Publish a fleet's per-user accounting through the metrics registry.

Mirrors :mod:`repro.obs.server_metrics`: the fleet keeps plain resettable
counters, registry counters only go up, so the adapter exports deltas and
treats a backward jump as a reset.  Gauges carry the per-user wait
statistics (dispersion, quantiles, Jain's index) from the fleet's
:meth:`~repro.fleet.state.FleetState.snapshot`.
"""

from __future__ import annotations

import math

from repro.obs.metrics import MetricsRegistry

__all__ = ["FleetMetricsAdapter", "bind_fleet_metrics"]

#: Resettable fleet counters mirrored as ``<prefix>_<name>_total``.
_COUNTERS = ("generated", "absorbed", "filtered", "offered", "delivered")
#: Snapshot keys mirrored as same-named gauges.
_GAUGES = (
    "num_clients", "users_measured", "still_waiting",
    "mean_wait", "max_wait",
    "user_wait_mean", "user_wait_min", "user_wait_max",
    "user_wait_p50", "user_wait_p90", "user_wait_p99",
    "jain_index",
)


class FleetMetricsAdapter:
    """Mirror one fleet's statistics into a metrics registry."""

    def __init__(self, registry: MetricsRegistry, fleet,
                 prefix: str = "fleet"):
        self.registry = registry
        self.fleet = fleet
        self.prefix = prefix
        self._last: dict[str, int] = {}
        # Create instruments eagerly so a snapshot taken before the
        # first sync still lists the full instrument set (at zero).
        for name in _COUNTERS:
            registry.counter(f"{prefix}_{name}_total",
                             f"fleet accesses {name}")
        for name in _GAUGES:
            registry.gauge(f"{prefix}_{name}", f"fleet {name}")

    def _bump(self, name: str, value: int) -> None:
        """Advance counter ``name`` to cumulative ``value`` via a delta."""
        last = self._last.get(name, 0)
        delta = value - last
        if delta < 0:
            # The fleet's counters were reset (measurement boundary);
            # the post-reset value is what accumulated since.
            delta = value
        if delta:
            self.registry.counter(name).inc(delta)
        self._last[name] = value

    def sync(self) -> None:
        """Publish the fleet's current statistics into the registry."""
        prefix = self.prefix
        snapshot = self.fleet.snapshot()
        for name in _COUNTERS:
            self._bump(f"{prefix}_{name}_total", snapshot[name])
        for name in _GAUGES:
            value = snapshot[name]
            # Gauges have no NaN convention; an unmeasured statistic
            # simply reads 0 until users complete accesses.
            self.registry.gauge(f"{prefix}_{name}").set(
                0.0 if isinstance(value, float) and math.isnan(value)
                else value)


def bind_fleet_metrics(registry: MetricsRegistry, fleet,
                       prefix: str = "fleet") -> FleetMetricsAdapter:
    """Create an adapter and perform the initial sync."""
    adapter = FleetMetricsAdapter(registry, fleet, prefix=prefix)
    adapter.sync()
    return adapter
