"""Per-user client fleets: the population the paper aggregates away.

The paper's model tracks one Measured Client and folds everyone else
into a single Poisson Virtual Client, so only *aggregate* load exists —
no per-user waits, no fairness.  This package adds a vectorized
struct-of-arrays population of individually tracked clients
(:class:`~repro.fleet.state.FleetState`, enabled via
``SystemConfig.fleet``), per-user fairness statistics
(:func:`~repro.fleet.fairness.jain_index`), fairness-vs-PullBW sweeps
(:func:`~repro.fleet.sweep.fleet_sweep_figure`), a homogeneous-fleet
parity harness validating the fleet against its aggregate-VC equivalent
(:func:`~repro.fleet.sweep.fleet_parity_report`), and a metrics-registry
adapter (:func:`~repro.fleet.metrics.bind_fleet_metrics`).

See docs/FLEET.md for the model, its heterogeneity knobs, and scale
limits.
"""

from repro.fleet.fairness import jain_index
from repro.fleet.metrics import FleetMetricsAdapter, bind_fleet_metrics
from repro.fleet.state import FleetState
from repro.fleet.sweep import (
    FAIRNESS_METRICS,
    PAPER_PULL_BWS,
    PARITY_PULL_BWS,
    fleet_parity_report,
    fleet_sweep_figure,
)

__all__ = [
    "FleetState",
    "FleetMetricsAdapter",
    "bind_fleet_metrics",
    "jain_index",
    "FAIRNESS_METRICS",
    "PAPER_PULL_BWS",
    "PARITY_PULL_BWS",
    "fleet_parity_report",
    "fleet_sweep_figure",
]
