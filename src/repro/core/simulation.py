"""The readable event-driven reference engine.

This engine models the system exactly as Figure 2 of the paper draws it,
one process per entity on the :mod:`repro.sim` kernel:

- a **server process** that emits one slot per broadcast unit (via the
  shared :class:`~repro.server.broadcast_server.BroadcastServer` state
  machine) and publishes each completed page to waiting clients,
- an **MC process** running the request–think loop with a real cache,
- a **VC process** generating the aggregate backchannel load with
  exponential think times — open-loop by default, optionally closed-loop
  (``RunConfig.vc_closed_loop``) where the generated client blocks until
  its page is broadcast.

It is an order of magnitude slower than :class:`~repro.core.fast.FastEngine`
but shares every component with it (server, caches, filters, workloads), so
agreement between the two validates the fast engine's shortcuts.
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.build import SystemState, build_system
from repro.core.config import SystemConfig
from repro.core.fast import SimulationStall
from repro.core.metrics import RunResult, TallySnapshot
from repro.server.broadcast_server import SlotKind
from repro.sim import Environment, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> core)
    from repro.obs.requests import RequestTracer
    from repro.obs.trace import SlotTracer

__all__ = ["ReferenceEngine"]


class ReferenceEngine:
    """Process-per-entity simulation of one configured system."""

    def __init__(self, config: SystemConfig, state: SystemState | None = None,
                 tracer: "SlotTracer | None" = None,
                 request_tracer: "RequestTracer | None" = None):
        self.config = config
        self.state = state if state is not None else build_system(config)
        self.env = Environment()
        # One pending event per page someone is waiting for; fired (and
        # replaced) when the page completes on the frontchannel.
        self._arrivals: dict[int, Event] = {}
        #: Page currently being transmitted (None between slots / idle).
        self._on_air: Optional[int] = None
        #: Kind of the slot carrying :attr:`_on_air` (observability only).
        self._on_air_kind: Optional[SlotKind] = None
        self._vc_rng = np.random.default_rng(
            np.random.SeedSequence((config.run.seed, 0xBEEF)))
        #: Optional slot tracer (same record schema as the fast engine's).
        self.tracer = tracer
        #: Optional request tracer (same record schema as the fast engine's).
        self.request_tracer = request_tracer
        #: Page the MC is currently blocked on (observability only).
        self._mc_waiting: Optional[int] = None
        # Phase control.
        self._warmup_mode = False
        self._phase = "warm"
        self._settle_done = 0
        self._measured_done = 0
        self._measure_start = 0.0
        self._end_time: Optional[float] = None
        self._qlen_sum = 0
        self._qlen_slots = 0

    # -- public protocol --------------------------------------------------------
    def run(self) -> RunResult:
        """Steady-state protocol: warm, settle, measure."""
        return self._execute(warmup_mode=False)

    def run_warmup(self) -> RunResult:
        """Warm-up protocol (Figure 4)."""
        if self.state.mc.warmup is None:
            raise ValueError("warm-up runs need a non-empty cache")
        return self._execute(warmup_mode=True)

    # -- orchestration -------------------------------------------------------------
    def _execute(self, warmup_mode: bool) -> RunResult:
        # lint: allow[REP001] -- wall-clock run duration for the manifest
        started = time.perf_counter()
        self._warmup_mode = warmup_mode
        if warmup_mode:
            self._phase = "measure"
            self._begin_measure()
        rtracer = self.request_tracer
        if rtracer is not None:
            if rtracer.think_time is None:
                rtracer.think_time = self.state.mc.think_time
            self.state.mc.tracer = rtracer
            self.state.server.queue.attach_observer(rtracer.on_queue_offer)
        # The MC starts before the server so a boundary-aligned access is
        # processed before the slot tick — the same event order the fast
        # engine and classic CSIM models use.
        self.env.process(self._mc_process())
        self.env.process(self._server_process())
        if self.config.algorithm.uses_backchannel:
            self.env.process(self._vc_process())
        max_slots = self.config.run.max_slots
        try:
            while self._end_time is None:
                if not self.env.peek() < max_slots:
                    raise SimulationStall(
                        f"run exceeded max_slots={max_slots}")
                self.env.step()
        finally:
            if rtracer is not None:
                self.state.server.queue.detach_observer()
                self.state.mc.tracer = None
        # lint: allow[REP001] -- provenance elapsed_seconds, not sim time
        return self._stamp(self._result(), time.perf_counter() - started)

    def _stamp(self, result: RunResult, elapsed: float) -> RunResult:
        """Attach the run-provenance manifest (lazy import: obs -> core)."""
        from dataclasses import replace

        from repro.obs.manifest import run_manifest

        return replace(result, manifest=run_manifest(
            self.config, "reference", elapsed_seconds=elapsed))

    def _begin_measure(self) -> None:
        state = self.state
        state.mc.measuring = True
        state.mc.reset_stats()
        state.server.reset_stats()
        state.vc.reset_stats()
        if state.fleet is not None:
            state.fleet.reset_stats()
        self._measure_start = self.env.now

    def _access_completed(self, completion: float) -> None:
        """Phase bookkeeping run after every completed MC access."""
        mc = self.state.mc
        if self._phase == "measure":
            if self._warmup_mode:
                if mc.warmup is not None and mc.warmup.complete:
                    self._end_time = completion
            else:
                self._measured_done += 1
                if self._measured_done >= self.config.run.measure_accesses:
                    self._end_time = completion
        elif self._phase == "warm":
            if mc.cache.is_full:
                self._phase = "settle"
        else:
            self._settle_done += 1
            if self._settle_done >= self.config.run.settle_accesses:
                self._phase = "measure"
                self._begin_measure()

    # -- processes -------------------------------------------------------------------
    def _arrival_event(self, page: int) -> Event:
        event = self._arrivals.get(page)
        if event is None:
            event = self.env.event()
            self._arrivals[page] = event
        return event

    def _server_process(self):
        from repro.sim.core import URGENT

        server = self.state.server
        fleet = self.state.fleet
        vc = self.state.vc
        threshold = self.state.mc_threshold
        reprogrammer = self.state.reprogrammer
        reprogram_interval = (reprogrammer.interval
                              if reprogrammer is not None else 0)
        uses_backchannel = self.config.algorithm.uses_backchannel
        env = self.env
        tracer = self.tracer
        slot = 0
        while True:
            if (reprogrammer is not None and slot
                    and slot % reprogram_interval == 0):
                # Same poll cadence and swap set as the fast engine: the
                # server's program plus every schedule-derived client
                # table must follow the live program together.
                new_schedule = reprogrammer.maybe_reprogram(
                    slot, server.queue.scheduler)
                if new_schedule is not None:
                    server.set_schedule(new_schedule)
                    threshold.set_schedule(new_schedule)
                    vc.set_schedule(new_schedule)
                    vc.set_threshold_slots(threshold.threshold_slots)
                    if fleet is not None:
                        fleet.set_schedule(new_schedule)
                        fleet.set_threshold_slots(threshold.threshold_slots)
            slot += 1
            if self._phase == "measure":
                self._qlen_sum += len(server.queue)
                self._qlen_slots += 1
            page, kind = server.tick()
            if tracer is not None:
                # Same snapshot instant as the fast engine: right after
                # the tick, before this slot's VC arrivals.
                tracer.on_slot(int(env.now), kind, page, server.queue,
                               self._mc_waiting)
            self._on_air = page
            self._on_air_kind = kind
            if (self.request_tracer is not None and page is not None
                    and page == self._mc_waiting):
                # The MC was already blocked on this page when it went on
                # air (mid-slot misses are caught in _mc_process instead).
                self.request_tracer.on_air(env.now, kind)
            if fleet is not None:
                # Fleet accesses inside this slot, drawn at the slot's
                # start (post-tick, matching the fast engine's fleet call
                # order: deliver(page at t-1) then generate(t)).  Their
                # arrival times are inside [t, t+1) regardless, and only
                # backchannel algorithms see the surviving pulls.
                survivors = fleet.generate(int(env.now), server.schedule_pos)
                if uses_backchannel:
                    for wanted in survivors.tolist():
                        server.queue.offer(wanted)
            # End-of-slot deliveries must become visible BEFORE any client
            # activity at the same instant (a fresh miss at the boundary
            # cannot catch a transmission that already finished), so the
            # slot ends at urgent priority...
            yield env.timeout(1.0, priority=URGENT)
            if page is not None:
                event = self._arrivals.pop(page, None)
                if event is not None:
                    event.succeed(env.now)
                if fleet is not None:
                    fleet.deliver(page, env.now)
            self._on_air = None
            self._on_air_kind = None
            # ...and the next tick re-enters at normal priority so a
            # boundary-aligned client request (scheduled long ago, lower
            # sequence number) is processed before the server frees queue
            # capacity — the CSIM event order the fast engine mirrors.
            yield env.timeout(0.0)

    def _obtain(self, page: int, send_pull: bool):
        """Shared client-side miss handling (used by MC and closed-loop VC).

        Yields until ``page`` completes on the frontchannel; the caller
        decides (via ``send_pull``) whether a backchannel request goes out
        first.
        """
        if send_pull:
            self.state.server.queue.offer(page)
        arrival = self._arrival_event(page)
        return (yield arrival)

    def _mc_process(self):
        mc = self.state.mc
        threshold = self.state.mc_threshold
        server = self.state.server
        uses_backchannel = self.config.algorithm.uses_backchannel
        rtracer = self.request_tracer
        env = self.env
        while True:
            now = env.now
            page = mc.draw_page()
            if mc.lookup(page, now):
                self._access_completed(now)
            else:
                if rtracer is not None:
                    rtracer.on_miss_predict(threshold.max_push_wait(
                        page, server.schedule_pos))
                send_pull = False
                if uses_backchannel:
                    send_pull = threshold.passes(page, server.schedule_pos)
                    if send_pull:
                        mc.record_pull_sent()
                        if self.tracer is not None:
                            self.tracer.on_mc_request(page)
                        # The MC's own offer happens here (rather than in
                        # _obtain) so the tracer can record its outcome;
                        # no yield separates the two, so the queue sees
                        # the identical mutation order either way.
                        outcome = server.queue.offer(page)
                        if rtracer is not None:
                            rtracer.on_pull(page, now, outcome)
                self._mc_waiting = page
                if rtracer is not None and self._on_air == page:
                    # Mid-slot miss on a page already transmitting: the
                    # slot started at the last integer boundary.
                    rtracer.on_air(math.floor(now), self._on_air_kind)
                arrived_at = yield from self._obtain(page, send_pull=False)
                self._mc_waiting = None
                mc.receive(page, now, arrived_at)
                self._access_completed(arrived_at)
            if self._end_time is not None:
                return
            yield env.timeout(mc.think_time)

    def _vc_process(self):
        vc = self.state.vc
        env = self.env
        server = self.state.server
        closed_loop = self.config.run.vc_closed_loop
        mean_gap = 1.0 / vc.rate
        while True:
            yield env.timeout(self._vc_rng.exponential(mean_gap))
            survivors = list(vc.requests_for_slot(1, server.schedule_pos))
            if not survivors:
                continue
            page = survivors[0]
            if self.tracer is not None:
                self.tracer.on_vc_request(page)
            if closed_loop:
                yield from self._obtain(page, send_pull=True)
            else:
                server.queue.offer(page)

    # -- results ------------------------------------------------------------------------
    def _result(self) -> RunResult:
        state = self.state
        mc = state.mc
        server = state.server
        assert self._end_time is not None
        warmup_times = None
        if self._warmup_mode and mc.warmup is not None:
            warmup_times = dict(mc.warmup.crossing_times)
        queue_length_mean = (
            self._qlen_sum / self._qlen_slots if self._qlen_slots else 0.0)
        return RunResult(
            algorithm=self.config.algorithm.value,
            seed=self.config.run.seed,
            response_miss=TallySnapshot.of(mc.response_miss,
                                           mc.latency_miss.quantiles()),
            response_all=TallySnapshot.of(mc.response_all,
                                          mc.latency_all.quantiles()),
            mc_hits=mc.hits,
            mc_misses=mc.misses,
            mc_pulls_sent=mc.pulls_sent,
            requests_enqueued=server.queue.enqueued,
            requests_duplicate=server.queue.duplicates,
            requests_dropped=server.queue.dropped,
            requests_served=server.queue.served,
            slots_push=server.slot_counts[SlotKind.PUSH],
            slots_pull=server.slot_counts[SlotKind.PULL],
            slots_padding=server.slot_counts[SlotKind.PADDING],
            slots_idle=server.slot_counts[SlotKind.IDLE],
            queue_length_mean=queue_length_mean,
            measured_slots=self._end_time - self._measure_start,
            total_slots=self._end_time,
            vc_generated=state.vc.generated,
            vc_absorbed=state.vc.absorbed_by_cache,
            vc_filtered=state.vc.filtered_by_threshold,
            warmup_times=warmup_times,
            fleet=(state.fleet.snapshot()
                   if state.fleet is not None else None),
        )
