"""Simulation parameters, mirroring Tables 1–3 of the paper.

All percentages from the paper are expressed as fractions here
(SteadyStatePerc 95% → 0.95).  :data:`PAPER_SETTINGS` records Table 3's
values verbatim so experiments and tests can reference them by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.algorithms import Algorithm

__all__ = [
    "ClientConfig",
    "FleetConfig",
    "SchedulerConfig",
    "ServerConfig",
    "RunConfig",
    "SystemConfig",
    "PAPER_SETTINGS",
    "PARITY_EXEMPT",
]

#: Config fields deliberately honoured by a single engine.  Everything
#: else must be read by BOTH core/simulation.py and core/fast.py —
#: enforced by lint rule REP004 (see docs/STATIC_ANALYSIS.md).  Keep each
#: entry justified; stale entries are themselves lint findings.
PARITY_EXEMPT: frozenset[str] = frozenset({
    # The paper's aggregate VC is open-loop; the closed-loop variant is a
    # reference-engine-only ablation (DESIGN.md §4) with no fast-engine
    # counterpart by design.
    "run.vc_closed_loop",
})


@dataclass(frozen=True)
class ClientConfig:
    """Table 1 — client parameters."""

    #: Client cache size in pages (CacheSize).
    cache_size: int = 100
    #: Broadcast units between MC page accesses (MCThinkTime).
    think_time: float = 20.0
    #: Ratio of MC to VC think times (ThinkTimeRatio); the VC load equals a
    #: population of this many MC-rate clients.
    think_time_ratio: float = 10.0
    #: Fraction of VC requests filtered through a warm cache
    #: (SteadyStatePerc).
    steady_state_perc: float = 0.95
    #: Fraction of workload deviation for the MC (Noise).
    noise: float = 0.0
    #: Zipf distribution parameter (θ).
    zipf_theta: float = 0.95
    #: MC replacement policy: "auto" follows the paper (PIX for
    #: push-involved algorithms, P for Pure-Pull); "pix" / "p" / "lru" /
    #: "lix" force one, enabling the cache-policy ablations.
    cache_policy: str = "auto"

    def __post_init__(self) -> None:
        if self.cache_policy not in ("auto", "pix", "p", "lru", "lix"):
            raise ValueError(
                f"unknown cache_policy {self.cache_policy!r}")
        if self.cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if self.think_time <= 0:
            raise ValueError("think_time must be positive")
        if self.think_time_ratio <= 0:
            raise ValueError("think_time_ratio must be positive")
        for name in ("steady_state_perc", "noise"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.zipf_theta < 0:
            raise ValueError("zipf_theta must be non-negative")


@dataclass(frozen=True)
class FleetConfig:
    """The per-user client fleet (an extension beyond the paper).

    The paper collapses everyone but the MC into one aggregate Virtual
    Client, which hides per-user experience entirely.  A non-zero
    ``num_clients`` adds a vectorized struct-of-arrays population of
    *individually tracked* clients (:mod:`repro.fleet`) as a third
    request source, with optional heterogeneity in access pattern, cache
    size, and think time.  All spreads at 0 give a homogeneous fleet
    whose aggregate load matches a Virtual Client of rate
    ``num_clients / think_time`` requests per broadcast unit.
    """

    #: Number of individually tracked clients (0 disables the fleet).
    num_clients: int = 0
    #: Mean think time between a client's accesses (broadcast units).
    think_time: float = 4000.0
    #: Per-client think-time heterogeneity: means drawn uniformly from
    #: ``think_time * [1 - spread, 1 + spread]``.
    think_time_spread: float = 0.0
    #: Per-client access-pattern heterogeneity: each client's page
    #: popularity ranking is rotated by an offset drawn uniformly from
    #: ``[0, zipf_offset_spread]`` (0 = everyone shares the server view).
    zipf_offset_spread: int = 0
    #: Warm-cache size per client (pages); absorption follows the paper's
    #: steady-state model: the ``cache_size - 1`` most valuable pages.
    cache_size: int = 100
    #: Per-client cache-size heterogeneity: sizes drawn uniformly from
    #: ``cache_size * [1 - spread, 1 + spread]`` (integer, clipped >= 0).
    cache_size_spread: float = 0.0

    def __post_init__(self) -> None:
        if self.num_clients < 0:
            raise ValueError("num_clients must be non-negative")
        if self.think_time <= 0:
            raise ValueError("think_time must be positive")
        if self.zipf_offset_spread < 0:
            raise ValueError("zipf_offset_spread must be non-negative")
        if self.cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        for name in ("think_time_spread", "cache_size_spread"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")


@dataclass(frozen=True)
class SchedulerConfig:
    """Pull-queue discipline and push-program reprogramming (beyond the
    paper; §6's "more dynamic algorithms").

    The default is the paper's configuration: FIFO service, no
    reprogramming — bit-identical to the pre-scheduler engines.
    """

    #: Pull-queue service discipline; one of
    #: :data:`repro.server.schedulers.DISCIPLINES`.
    discipline: str = "fifo"
    #: RxW aging exponent on the wait term (1.0 = classic R×W; toward 0
    #: degenerates to most-requested-first, above 1 resists starvation).
    aging: float = 1.0
    #: Slots between temperature-driven push-program rebuild attempts
    #: (0 disables reprogramming).
    reprogram_interval: int = 0
    #: Minimum newly observed backchannel demand (offers since the last
    #: rebuild) before a rebuild actually happens.
    reprogram_min_requests: int = 500

    def __post_init__(self) -> None:
        if self.discipline not in ("fifo", "rxw", "lwf"):
            raise ValueError(f"unknown discipline {self.discipline!r}")
        if self.aging < 0:
            raise ValueError("aging must be non-negative")
        if self.reprogram_interval < 0:
            raise ValueError("reprogram_interval must be non-negative")
        if self.reprogram_min_requests < 1:
            raise ValueError("reprogram_min_requests must be positive")


@dataclass(frozen=True)
class ServerConfig:
    """Table 2 — server parameters."""

    #: Number of distinct pages in the database (ServerDBSize).
    db_size: int = 1000
    #: Pages per disk, fastest first (DiskSize_i).
    disk_sizes: tuple[int, ...] = (100, 400, 500)
    #: Relative broadcast frequency per disk (RelFreq_i).
    rel_freqs: tuple[int, ...] = (3, 2, 1)
    #: Backchannel queue capacity (ServerQSize).
    queue_size: int = 100
    #: Fraction of broadcast slots offered to pulls (PullBW).
    pull_bw: float = 0.5
    #: Threshold as a fraction of the major cycle (ThresPerc).
    thresh_perc: float = 0.0
    #: Apply the Offset transform (all paper results use it).
    offset: bool = True
    #: Pages removed from the push program (Experiment 3's chopping).
    chop: int = 0

    def __post_init__(self) -> None:
        if self.db_size < 1:
            raise ValueError("db_size must be positive")
        if len(self.disk_sizes) != len(self.rel_freqs):
            raise ValueError("disk_sizes and rel_freqs must align")
        if sum(self.disk_sizes) != self.db_size:
            raise ValueError(
                f"disk sizes {self.disk_sizes} must sum to db_size "
                f"{self.db_size}")
        if any(s < 1 for s in self.disk_sizes):
            raise ValueError("disk sizes must be positive")
        if any(f < 1 for f in self.rel_freqs):
            raise ValueError("relative frequencies must be positive")
        if self.queue_size < 1:
            raise ValueError("queue_size must be positive")
        if not 0.0 <= self.pull_bw <= 1.0:
            raise ValueError("pull_bw must be within [0, 1]")
        if not 0.0 <= self.thresh_perc <= 1.0:
            raise ValueError("thresh_perc must be within [0, 1]")
        if not 0 <= self.chop < self.db_size:
            raise ValueError("chop must leave at least one broadcast page")


@dataclass(frozen=True)
class RunConfig:
    """Simulation-control parameters (Section 4's methodology).

    Steady-state runs warm the MC cache, settle for ``settle_accesses``
    further accesses ("measurements started only 4000 accesses after the
    cache filled up"), then measure ``measure_accesses`` accesses.
    """

    #: Accesses between cache-full and the measured phase.
    settle_accesses: int = 4000
    #: Accesses measured for the reported statistics.
    measure_accesses: int = 5000
    #: RNG seed.
    seed: int = 0
    #: Hard cap on simulated broadcast units (guards runaway runs).
    max_slots: int = 50_000_000
    #: Model the VC as blocking on each response (reference engine only;
    #: the paper's aggregate VC is open-loop, see DESIGN.md §4).
    vc_closed_loop: bool = False

    def __post_init__(self) -> None:
        if self.settle_accesses < 0:
            raise ValueError("settle_accesses must be non-negative")
        if self.measure_accesses < 1:
            raise ValueError("measure_accesses must be positive")
        if self.max_slots < 1:
            raise ValueError("max_slots must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated system: algorithm + client + server + run."""

    algorithm: Algorithm = Algorithm.IPP
    client: ClientConfig = field(default_factory=ClientConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    run: RunConfig = field(default_factory=RunConfig)
    fleet: FleetConfig = field(default_factory=FleetConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)

    def __post_init__(self) -> None:
        if (self.algorithm is Algorithm.PURE_PUSH
                and self.server.chop > 0):
            raise ValueError(
                "Pure-Push cannot chop pages: a missed non-broadcast page "
                "would never arrive")
        if self.client.cache_size > self.server.disk_sizes[-1]:
            raise ValueError(
                "the Offset transform requires cache_size to fit on the "
                "slowest disk")
        if self.scheduler.reprogram_interval > 0:
            if not (self.algorithm.has_push_program
                    and self.algorithm.uses_backchannel):
                raise ValueError(
                    "temperature reprogramming needs both a push program "
                    "to rebuild and a backchannel to observe demand on "
                    "(i.e. the interleaved algorithms)")
            if self.server.chop > 0:
                raise ValueError(
                    "reprogramming rebuilds a full program and cannot be "
                    "combined with chopping: re-adding a chopped page "
                    "would strand clients waiting on the old safety net")

    # -- derived views --------------------------------------------------------
    @property
    def pull_bw(self) -> float:
        """PullBW in force after the algorithm's override."""
        return self.algorithm.effective_pull_bw(self.server.pull_bw)

    @property
    def thresh_perc(self) -> float:
        """ThresPerc in force after the algorithm's override."""
        return self.algorithm.effective_thresh_perc(self.server.thresh_perc)

    def with_(self, **updates: object) -> "SystemConfig":
        """Return a copy with nested fields replaced.

        Accepts top-level field names plus dotted shorthands expanded by
        sub-config: ``client__think_time_ratio=250`` etc.
        """
        top: dict = {}
        nested: dict[str, dict] = {"client": {}, "server": {}, "run": {},
                                   "fleet": {}, "scheduler": {}}
        for key, value in updates.items():
            if "__" in key:
                section, field_name = key.split("__", 1)
                if section not in nested:
                    raise TypeError(f"unknown config section {section!r}")
                nested[section][field_name] = value
            else:
                top[key] = value
        for section, fields in nested.items():
            if fields:
                top[section] = replace(getattr(self, section), **fields)
        return replace(self, **top)


#: Table 3 — the paper's experiment settings, verbatim.
PAPER_SETTINGS: Mapping[str, tuple] = {
    "CacheSize": (100,),
    "ThinkTime": (20,),
    "ThinkTimeRatio": (10, 25, 50, 100, 250),
    "SteadyStatePerc": (0.0, 0.95),
    "Noise": (0.0, 0.15, 0.35),
    "ZipfTheta": (0.95,),
    "ServerDBSize": (1000,),
    "NumDisks": (3,),
    "DiskSizes": ((100, 400, 500),),
    "RelFreqs": ((3, 2, 1),),
    "ServerQSize": (100,),
    "PullBW": (0.10, 0.20, 0.30, 0.40, 0.50),
    "ThresPerc": (0.0, 0.10, 0.25, 0.35),
}
