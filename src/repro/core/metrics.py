"""Run results: what a simulation reports back.

:class:`RunResult` is a plain-data snapshot — picklable, JSON-serializable
— so experiment sweeps can fan runs out to worker processes and archive
the outcomes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, asdict
from typing import Any, Optional

from repro.sim.monitor import Tally

__all__ = ["TallySnapshot", "RunResult"]


@dataclass(frozen=True)
class TallySnapshot:
    """Frozen summary of a :class:`~repro.sim.monitor.Tally`.

    The optional p50/p90/p99 fields carry interpolated quantiles when the
    producer also kept a :class:`~repro.obs.latency.LatencyHistogram`
    beside the Welford tally; they stay None otherwise (and for snapshots
    loaded from pre-quantile archives).
    """

    count: int = 0
    mean: float = math.nan
    stddev: float = math.nan
    min: float = math.nan
    max: float = math.nan
    p50: Optional[float] = None
    p90: Optional[float] = None
    p99: Optional[float] = None

    @classmethod
    def of(cls, tally: Tally,
           quantiles: Optional[dict[str, float]] = None) -> "TallySnapshot":
        """Freeze the current state of ``tally``.

        ``quantiles`` is the ``{"p50": ..., "p90": ..., "p99": ...}`` dict
        a :class:`~repro.obs.latency.LatencyHistogram` reports.
        """
        if tally.count == 0:
            return cls()
        quantiles = quantiles or {}
        return cls(count=tally.count, mean=tally.mean, stddev=tally.stddev,
                   min=tally.min, max=tally.max,
                   p50=quantiles.get("p50"), p90=quantiles.get("p90"),
                   p99=quantiles.get("p99"))


@dataclass(frozen=True)
class RunResult:
    """Everything one simulation run measured.

    Response times are in broadcast units.  ``response_miss`` is the mean
    over accesses that left the cache (the paper's headline metric);
    ``response_all`` additionally counts cache hits as zero-delay.
    """

    algorithm: str
    seed: int
    #: MC response time over cache-missing accesses.
    response_miss: TallySnapshot
    #: MC response time over all accesses (hits count as 0).
    response_all: TallySnapshot
    #: MC cache hits / misses during the measured phase.
    mc_hits: int
    mc_misses: int
    #: Backchannel requests the MC sent.
    mc_pulls_sent: int
    #: Server queue accounting during the measured phase.
    requests_enqueued: int
    requests_duplicate: int
    requests_dropped: int
    requests_served: int
    #: Broadcast slots by kind during the measured phase.
    slots_push: int
    slots_pull: int
    slots_padding: int
    slots_idle: int
    #: Mean backchannel queue length (sampled per slot).
    queue_length_mean: float
    #: Simulated broadcast units in the measured phase.
    measured_slots: float
    #: Total simulated broadcast units including warm-up phases.
    total_slots: float
    #: VC accounting during the measured phase.
    vc_generated: int = 0
    vc_absorbed: int = 0
    vc_filtered: int = 0
    #: Warm-up crossing times (level fraction -> broadcast units), present
    #: only for warm-up runs (Figure 4).
    warmup_times: Optional[dict[float, float]] = None
    #: Per-user fleet statistics (:meth:`repro.fleet.FleetState.snapshot`),
    #: present only when the run simulated a client fleet.
    fleet: Optional[dict[str, Any]] = None
    #: Free-form extras (sweep coordinates etc.).
    params: dict[str, Any] = field(default_factory=dict)
    #: Run provenance (:func:`repro.obs.manifest.run_manifest`).  Carries
    #: a wall-clock timestamp, so it is excluded from equality: two runs
    #: of the same seed stay == even when stamped at different times.
    manifest: Optional[dict[str, Any]] = field(
        default=None, compare=False, repr=False)

    @property
    def mc_miss_rate(self) -> float:
        """Fraction of measured MC accesses that missed the cache."""
        total = self.mc_hits + self.mc_misses
        return self.mc_misses / total if total else math.nan

    @property
    def request_offers(self) -> int:
        """Requests presented to the server queue (all clients)."""
        return (self.requests_enqueued + self.requests_duplicate
                + self.requests_dropped)

    @property
    def drop_rate(self) -> float:
        """Fraction of offered requests dropped for a full queue."""
        offers = self.request_offers
        return self.requests_dropped / offers if offers else 0.0

    @property
    def pull_slot_share(self) -> float:
        """Fraction of measured slots spent answering pulls."""
        slots = (self.slots_push + self.slots_pull + self.slots_padding
                 + self.slots_idle)
        return self.slots_pull / slots if slots else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-ready; warm-up keys stringified)."""
        data = asdict(self)
        if data["warmup_times"] is not None:
            data["warmup_times"] = {
                str(level): time
                for level, time in data["warmup_times"].items()}
        data["drop_rate"] = self.drop_rate
        data["mc_miss_rate"] = self.mc_miss_rate
        return data
