"""The three data-delivery algorithms compared by the paper (Section 2.3).

All three broadcast on the frontchannel; they differ in how cache misses
are handled:

- **Pure-Push** — the original Broadcast Disks scheme.  ``PullBW = 0``, no
  backchannel; a missing page is awaited on the periodic program.
- **Pure-Pull** — request/response with snooping.  ``PullBW = 1``, no
  periodic program; every miss sends a backchannel request and any client
  can grab pages pulled by others off the frontchannel.
- **IPP** — Interleaved Push and Pull.  The periodic program continues,
  with up to ``PullBW`` of the slots answering queued pulls; clients
  request only pages whose next push lies beyond the threshold.

The cache value metric follows footnote 4: ``P`` (probability only) for
Pure-Pull, ``PIX`` (probability over broadcast frequency) otherwise.
"""

from __future__ import annotations

import enum

__all__ = ["Algorithm"]


class Algorithm(enum.Enum):
    """Which delivery scheme a simulated system runs."""

    PURE_PUSH = "pure-push"
    PURE_PULL = "pure-pull"
    IPP = "ipp"

    @property
    def has_push_program(self) -> bool:
        """Whether a periodic broadcast program exists."""
        return self is not Algorithm.PURE_PULL

    @property
    def uses_backchannel(self) -> bool:
        """Whether clients may send pull requests."""
        return self is not Algorithm.PURE_PUSH

    @property
    def cache_metric(self) -> str:
        """Value metric for replacement and steady-state sets ('pix'/'p')."""
        return "p" if self is Algorithm.PURE_PULL else "pix"

    def effective_pull_bw(self, configured: float) -> float:
        """PullBW actually in force (the pure algorithms pin it)."""
        if self is Algorithm.PURE_PUSH:
            return 0.0
        if self is Algorithm.PURE_PULL:
            return 1.0
        return configured

    def effective_thresh_perc(self, configured: float) -> float:
        """ThresPerc actually in force.

        Thresholding "is not meaningful when the Pure-Pull approach is
        used" (Section 3.2) — every miss is requested — and Pure-Push
        never requests anything regardless.
        """
        return configured if self is Algorithm.IPP else 0.0
