"""The optimized slot-driven simulation engine.

Time advances one broadcast slot at a time.  The within-slot event order
matches classic process-simulation (CSIM) semantics, which the reference
engine reproduces naturally and which shapes the saturation behaviour:

1. the page transmitted during the *previous* slot completes and is
   delivered to every snooping client,
2. measured-client accesses due in this slot run — a boundary-aligned
   request is processed *before* the server frees queue capacity, so under
   saturation the MC competes for queue space exactly like everyone else,
3. the server emits the slot (push page, pull response, padding, or idle),
4. the virtual client's Poisson request arrivals (strictly inside the
   slot) reach the backchannel queue.

Virtual-client work dominates at high ThinkTimeRatio, so all its draws are
buffered in bulk (see :mod:`repro.workload.access`) and the threshold check
is a flat table lookup.  Pure-Push runs take an exact analytic shortcut:
with no backchannel the schedule is never perturbed, so each miss's arrival
time is computed directly from the distance table instead of ticking
millions of empty slots.

The reference engine in :mod:`repro.core.simulation` implements the same
semantics event-by-event; integration tests cross-validate the two.
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING

from repro.broadcast.schedule import NOT_BROADCAST
from repro.core.algorithms import Algorithm
from repro.core.build import SystemState, build_system
from repro.core.config import SystemConfig
from repro.core.metrics import RunResult, TallySnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> core)
    from repro.obs.profile import HotLoopProfile
    from repro.obs.requests import RequestTracer
    from repro.obs.trace import SlotTracer

__all__ = ["FastEngine", "simulate", "simulate_warmup", "SimulationStall"]

#: How many per-slot Poisson counts to pre-draw at once.
_POISSON_CHUNK = 1 << 14


class SimulationStall(RuntimeError):
    """The run hit ``max_slots`` before reaching its stop condition."""


class FastEngine:
    """Run one configured system to completion and report a RunResult."""

    def __init__(self, config: SystemConfig, state: SystemState | None = None,
                 force_general: bool = False, controller=None,
                 tracer: "SlotTracer | None" = None,
                 profiler: "HotLoopProfile | None" = None,
                 request_tracer: "RequestTracer | None" = None):
        """Args:
            config: the system to simulate.
            state: pre-built components (a fresh one is built if omitted).
            force_general: disable the Pure-Push analytic shortcut so tests
                can cross-validate it against the general slot loop.
            controller: optional
                :class:`~repro.core.adaptive.AdaptiveController` retuning
                PullBW / ThresPerc during the run (IPP only).
            tracer: optional :class:`~repro.obs.trace.SlotTracer` emitting
                one structured record per completed slot.  Forces the
                general slot loop (the Pure-Push analytic shortcut ticks
                no slots to trace).
            profiler: optional :class:`~repro.obs.profile.HotLoopProfile`
                accumulating per-phase wall time; also forces the general
                loop.
            request_tracer: optional
                :class:`~repro.obs.requests.RequestTracer` emitting one
                lifecycle record per MC access; also forces the general
                loop (the analytic shortcut never airs a slot to observe).
        """
        self.config = config
        self.state = state if state is not None else build_system(config)
        self._force_general = force_general
        self.controller = controller
        self.tracer = tracer
        self.profiler = profiler
        self.request_tracer = request_tracer
        if controller is not None and config.algorithm is not Algorithm.IPP:
            raise ValueError("adaptive control only applies to IPP")

    # -- public protocol -------------------------------------------------------
    def run(self) -> RunResult:
        """Steady-state protocol: warm the cache, settle, then measure."""
        return self._execute(warmup_mode=False)

    def run_warmup(self) -> RunResult:
        """Warm-up protocol (Figure 4): measure from a cold cache until the
        95% warm level is crossed."""
        if self.state.mc.warmup is None:
            raise ValueError("warm-up runs need a non-empty cache")
        return self._execute(warmup_mode=True)

    # -- engine ------------------------------------------------------------------
    def _execute(self, warmup_mode: bool) -> RunResult:
        use_analytic = (self.config.algorithm is Algorithm.PURE_PUSH
                        and not self._force_general
                        and self.tracer is None
                        and self.profiler is None
                        and self.request_tracer is None
                        # The fleet needs every slot ticked: its clients
                        # snoop the frontchannel page by page.
                        and self.state.fleet is None)
        # lint: allow[REP001] -- wall-clock run duration for the manifest
        started = time.perf_counter()
        rtracer = self.request_tracer
        if rtracer is not None:
            # Attach before _run_general hoists queue.offer so the hot
            # loop calls the observed wrapper; detach even on a stall so
            # a reused SystemState never double-attaches.
            if rtracer.think_time is None:
                rtracer.think_time = self.state.mc.think_time
            self.state.mc.tracer = rtracer
            self.state.server.queue.attach_observer(rtracer.on_queue_offer)
        try:
            if use_analytic:
                result = self._run_pure_push(warmup_mode)
            else:
                result = self._run_general(warmup_mode)
        finally:
            if rtracer is not None:
                self.state.server.queue.detach_observer()
                self.state.mc.tracer = None
        # lint: allow[REP001] -- provenance elapsed_seconds, not sim time
        return self._stamp(result, time.perf_counter() - started)

    def _stamp(self, result: RunResult, elapsed: float) -> RunResult:
        """Attach the run-provenance manifest (lazy import: obs -> core)."""
        from dataclasses import replace

        from repro.obs.manifest import run_manifest

        return replace(result, manifest=run_manifest(
            self.config, "fast", elapsed_seconds=elapsed))

    def _begin_measure(self) -> None:
        state = self.state
        state.mc.measuring = True
        state.mc.reset_stats()
        state.server.reset_stats()
        state.vc.reset_stats()
        if state.fleet is not None:
            state.fleet.reset_stats()

    def _result(self, warmup_mode: bool, measure_start: float,
                end_time: float, queue_length_mean: float) -> RunResult:
        state = self.state
        mc = state.mc
        server = state.server
        from repro.server.broadcast_server import SlotKind

        warmup_times = None
        if warmup_mode and mc.warmup is not None:
            warmup_times = dict(mc.warmup.crossing_times)
        return RunResult(
            algorithm=self.config.algorithm.value,
            seed=self.config.run.seed,
            response_miss=TallySnapshot.of(mc.response_miss,
                                           mc.latency_miss.quantiles()),
            response_all=TallySnapshot.of(mc.response_all,
                                          mc.latency_all.quantiles()),
            mc_hits=mc.hits,
            mc_misses=mc.misses,
            mc_pulls_sent=mc.pulls_sent,
            requests_enqueued=server.queue.enqueued,
            requests_duplicate=server.queue.duplicates,
            requests_dropped=server.queue.dropped,
            requests_served=server.queue.served,
            slots_push=server.slot_counts[SlotKind.PUSH],
            slots_pull=server.slot_counts[SlotKind.PULL],
            slots_padding=server.slot_counts[SlotKind.PADDING],
            slots_idle=server.slot_counts[SlotKind.IDLE],
            queue_length_mean=queue_length_mean,
            measured_slots=end_time - measure_start,
            total_slots=end_time,
            vc_generated=state.vc.generated,
            vc_absorbed=state.vc.absorbed_by_cache,
            vc_filtered=state.vc.filtered_by_threshold,
            warmup_times=warmup_times,
            fleet=(state.fleet.snapshot()
                   if state.fleet is not None else None),
        )

    # -- pure-push analytic path ---------------------------------------------------
    def _run_pure_push(self, warmup_mode: bool) -> RunResult:
        """Exact Pure-Push simulation without per-slot ticking.

        With ``PullBW = 0`` and no backchannel the program never deviates:
        the page at cycle position ``s mod cycle`` is transmitted during
        slot ``s``, so a miss at time τ is satisfied at
        ``floor(τ) + distance + 1``.
        """
        state = self.state
        mc = state.mc
        schedule = state.schedule
        assert schedule is not None
        cycle = len(schedule)
        distance = schedule.distance
        run_cfg = self.config.run
        max_slots = run_cfg.max_slots

        phase_warm, phase_settle, phase_measure = 0, 1, 2
        if warmup_mode:
            phase = phase_measure
            self._begin_measure()
            target_accesses = math.inf
        else:
            phase = phase_warm
            target_accesses = run_cfg.measure_accesses
        settle_done = 0
        measured_done = 0
        measure_start = 0.0
        time = 0.0
        think = mc.think_time

        while time < max_slots:
            now = time
            page = mc.draw_page()
            if mc.lookup(page, now):
                completion = now
            else:
                d = distance(page, int(now) % cycle)
                if d >= NOT_BROADCAST:
                    raise SimulationStall(
                        f"page {page} is not on the Pure-Push program")
                completion = int(now) + d + 1
                mc.receive(page, now, completion)
            time = completion + think
            # Phase bookkeeping per completed access.
            if phase == phase_measure:
                if warmup_mode:
                    if mc.warmup is not None and mc.warmup.complete:
                        return self._result(True, measure_start, completion,
                                            0.0)
                else:
                    measured_done += 1
                    if measured_done >= target_accesses:
                        result = self._result(False, measure_start,
                                              completion, 0.0)
                        return self._synthesize_push_slots(result)
            elif phase == phase_warm:
                if mc.cache.is_full:
                    phase = phase_settle
            elif phase == phase_settle:
                settle_done += 1
                if settle_done >= run_cfg.settle_accesses:
                    phase = phase_measure
                    measure_start = completion
                    self._begin_measure()
        raise SimulationStall(
            f"Pure-Push run exceeded max_slots={max_slots}")

    def _synthesize_push_slots(self, result: RunResult) -> RunResult:
        """Fill slot counts the analytic path never ticked through."""
        schedule = self.state.schedule
        assert schedule is not None
        elapsed = int(result.measured_slots)
        pad_fraction = schedule.num_empty_slots / len(schedule)
        padding = int(round(elapsed * pad_fraction))
        from dataclasses import replace

        return replace(result, slots_push=elapsed - padding,
                       slots_padding=padding)

    # -- general slot-driven path -----------------------------------------------------
    def _run_general(self, warmup_mode: bool) -> RunResult:
        state = self.state
        config = self.config
        run_cfg = config.run
        server = state.server
        queue = server.queue
        mc = state.mc
        vc = state.vc
        fleet = state.fleet
        threshold = state.mc_threshold
        uses_backchannel = config.algorithm.uses_backchannel
        tick = server.tick
        offer = queue.offer
        requests_for_slot = vc.requests_for_slot
        draw_page = mc.draw_page
        lookup = mc.lookup
        receive = mc.receive
        think = mc.think_time
        max_slots = run_cfg.max_slots

        phase_warm, phase_settle, phase_measure = 0, 1, 2
        if warmup_mode:
            phase = phase_measure
            self._begin_measure()
        else:
            phase = phase_warm
        settle_done = 0
        measured_done = 0
        measure_start = 0.0
        target_accesses = run_cfg.measure_accesses
        settle_accesses = run_cfg.settle_accesses
        warmup_tracker = mc.warmup

        mc_time = 0.0
        waiting_page: int | None = None
        requested_at = 0.0
        stop = False
        end_time = 0.0
        qlen_sum = 0
        qlen_slots = 0

        poisson_counts: list[int] = []
        poisson_cursor = 0

        controller = self.controller
        control_interval = (controller.policy.interval
                            if controller is not None else 0)
        # Tail-wait feedback is opt-in (policy budget set + fleet present):
        # a fleet snapshot per decision is cheap at interval granularity
        # but not free at million-client scale.
        control_tail = (controller is not None and fleet is not None
                        and controller.policy.tail_wait_budget is not None)
        reprogrammer = state.reprogrammer
        reprogram_interval = (reprogrammer.interval
                              if reprogrammer is not None else 0)

        # Observability hooks: both default to None, in which case the
        # loop pays one local-boolean test per phase and nothing else.
        tracer = self.tracer
        tracing = tracer is not None
        rtracer = self.request_tracer
        rtracing = rtracer is not None
        prof = self.profiler
        profiling = prof is not None
        # lint: allow[REP001] -- profiler phase timer, measures wall time only
        _pc = time.perf_counter
        run_started = _pc() if profiling else 0.0
        _t0 = _now = 0.0

        #: Page transmitted during the previous slot (completes now).
        in_flight: int | None = None

        t = 0
        while not stop:
            if profiling:
                _t0 = _pc()
            if controller is not None and t and t % control_interval == 0:
                # Distinct offers (enqueued + dropped): duplicates carry
                # no saturation signal (see BoundedRequestQueue.drop_rate).
                push_wait = pull_wait = tail_wait = None
                if rtracing:
                    breakdown = rtracer.breakdown_stats
                    push_wait = breakdown.push_wait
                    pull_wait = breakdown.pull_wait
                if control_tail and fleet is not None:
                    tail_wait = fleet.snapshot()["user_wait_p99"]
                pull_bw, thresh_perc = controller.decide(
                    float(t), queue.enqueued + queue.dropped, queue.dropped,
                    push_wait=push_wait, pull_wait=pull_wait,
                    tail_wait=tail_wait)
                server.mux.pull_bw = pull_bw
                threshold.set_thresh_perc(thresh_perc)
                vc.set_threshold_slots(threshold.threshold_slots)
                if fleet is not None:
                    fleet.set_threshold_slots(threshold.threshold_slots)
                if profiling:
                    _now = _pc()
                    prof.control += _now - _t0
                    _t0 = _now
            if reprogrammer is not None and t and t % reprogram_interval == 0:
                new_schedule = reprogrammer.maybe_reprogram(
                    t, queue.scheduler)
                if new_schedule is not None:
                    # Swap the program everywhere a distance table or
                    # cursor was derived from the old one.
                    server.set_schedule(new_schedule)
                    threshold.set_schedule(new_schedule)
                    vc.set_schedule(new_schedule)
                    vc.set_threshold_slots(threshold.threshold_slots)
                    if fleet is not None:
                        fleet.set_schedule(new_schedule)
                        fleet.set_threshold_slots(threshold.threshold_slots)
            if t >= max_slots:
                raise SimulationStall(
                    f"run exceeded max_slots={max_slots} "
                    f"(waiting_page={waiting_page}, t={t})")
            now_boundary = float(t)

            # 1. Deliveries: the previous slot's page completes at time t and
            # the MC snoops every frontchannel page, push or pull.
            if fleet is not None and in_flight is not None:
                fleet.deliver(in_flight, now_boundary)
            if in_flight is not None and in_flight == waiting_page:
                receive(in_flight, requested_at, now_boundary)
                waiting_page = None
                mc_time = now_boundary + think
                # Completed-access bookkeeping (mirrors the block below).
                if phase == phase_measure:
                    if warmup_mode:
                        if warmup_tracker is not None and warmup_tracker.complete:
                            stop = True
                            end_time = now_boundary
                    else:
                        measured_done += 1
                        if measured_done >= target_accesses:
                            stop = True
                            end_time = now_boundary
                elif phase == phase_warm:
                    if mc.cache.is_full:
                        phase = phase_settle
                else:
                    settle_done += 1
                    if settle_done >= settle_accesses:
                        phase = phase_measure
                        measure_start = now_boundary
                        self._begin_measure()

            if profiling:
                _now = _pc()
                prof.deliver += _now - _t0
                _t0 = _now

            # 2. MC accesses due in this slot, processed before the server
            # frees queue capacity (CSIM event order: a request landing on
            # the slot boundary does not get first claim on the popped slot).
            while not stop and waiting_page is None and mc_time < t + 1.0:
                now = mc_time
                wanted = draw_page()
                if lookup(wanted, now):
                    mc_time = now + think
                else:
                    if rtracing:
                        rtracer.on_miss_predict(threshold.max_push_wait(
                            wanted, server.schedule_pos))
                    if uses_backchannel and threshold.passes(
                            wanted, server.schedule_pos):
                        outcome = offer(wanted)
                        mc.record_pull_sent()
                        if tracing:
                            tracer.on_mc_request(wanted)
                        if rtracing:
                            rtracer.on_pull(wanted, now, outcome)
                    waiting_page = wanted
                    requested_at = now
                    break
                # Completed-access (cache hit) bookkeeping.
                if phase == phase_measure:
                    if warmup_mode:
                        if warmup_tracker is not None and warmup_tracker.complete:
                            stop = True
                            end_time = now
                    else:
                        measured_done += 1
                        if measured_done >= target_accesses:
                            stop = True
                            end_time = now
                elif phase == phase_warm:
                    if mc.cache.is_full:
                        phase = phase_settle
                else:
                    settle_done += 1
                    if settle_done >= settle_accesses:
                        phase = phase_measure
                        measure_start = now
                        self._begin_measure()

            if profiling:
                _now = _pc()
                prof.mc_access += _now - _t0
                _t0 = _now

            if phase == phase_measure:
                qlen_sum += len(queue)
                qlen_slots += 1

            # 3. The server emits the slot [t, t+1).
            in_flight, kind = tick()
            # The record snapshots the post-tick instant, before this
            # slot's VC arrivals; a tick past the stop condition is the
            # loop's exit slack, not a simulated slot, so it isn't traced.
            if tracing and not stop:
                tracer.on_slot(t, kind, in_flight, queue, waiting_page)
            # The MC's awaited page went on air at this slot's start; its
            # delivery fires at t+1 in the next iteration's step 1.
            if (rtracing and not stop and waiting_page is not None
                    and in_flight == waiting_page):
                rtracer.on_air(now_boundary, kind)

            if profiling:
                _now = _pc()
                prof.server_tick += _now - _t0
                _t0 = _now

            # 4. VC arrivals strictly inside this slot.
            if uses_backchannel:
                if poisson_cursor >= len(poisson_counts):
                    poisson_counts = vc.arrivals_for_slots(_POISSON_CHUNK)
                    poisson_cursor = 0
                count = poisson_counts[poisson_cursor]
                poisson_cursor += 1
                if count:
                    if tracing:
                        for wanted in requests_for_slot(
                                count, server.schedule_pos):
                            offer(wanted)
                            tracer.on_vc_request(wanted)
                    else:
                        for wanted in requests_for_slot(
                                count, server.schedule_pos):
                            offer(wanted)
            # Fleet accesses inside this slot.  generate() must run even
            # without a backchannel — clients still access, absorb, and
            # wait on the push program — but its survivors only reach the
            # queue when the algorithm accepts pulls.
            if fleet is not None:
                survivors = fleet.generate(t, server.schedule_pos)
                if uses_backchannel:
                    for wanted in survivors.tolist():
                        offer(wanted)
            if profiling:
                prof.vc_arrivals += _pc() - _t0
            t += 1

        if profiling:
            prof.slots = t
            prof.wall_seconds = _pc() - run_started
        queue_length_mean = qlen_sum / qlen_slots if qlen_slots else 0.0
        return self._result(warmup_mode, measure_start, end_time,
                            queue_length_mean)


def simulate(config: SystemConfig) -> RunResult:
    """Build and run one steady-state simulation."""
    return FastEngine(config).run()


def simulate_warmup(config: SystemConfig) -> RunResult:
    """Build and run one warm-up (Figure 4) simulation."""
    return FastEngine(config).run_warmup()
