"""Dynamic PullBW / threshold control — the paper's future work (§6).

    "We also see the utility in developing more dynamic algorithms that can
    adjust to changes in the system load.  For example, as the contention
    on the server increases, a dynamic algorithm might automatically reduce
    the pull bandwidth at the server and also use a larger threshold at the
    client."

:class:`AdaptiveController` implements exactly that policy as an
additive-increase / additive-decrease loop over three observed signals:

- the backchannel queue's window **drop rate**, computed over *distinct*
  offers (``enqueued + dropped``; duplicates neither take a slot nor can
  be dropped, so counting them would dilute the signal — at high load
  most offers for hot pages are duplicates),
- optionally the request tracer's **wait decomposition**: the share of
  measured queue wait spent in the pull queue vs waiting for the push
  program.  A pull-dominated share means the backchannel is the
  bottleneck even while the queue is deep-but-not-dropping, which window
  drop rate alone cannot see,
- optionally the fleet's **tail wait** (per-user p99) against a budget,
  so PullBW reacts to tail users, not just the aggregate mean.

Under saturation it steps the threshold up and the pull bandwidth down
(strengthening the push safety net); when every signal reads idle it
relaxes both so light-load responsiveness returns.  A window with zero
distinct offers carries *no signal* — the clients may simply be blocked
on long waits — so parameters hold and the window is traced as
``no-signal`` (relaxing on silence was a bug: a saturated system whose
clients are all stuck waiting looks exactly like an idle one through the
drop-rate lens).

The fast engine applies the controller every ``interval`` slots when one
is supplied.

On the re-checked ``high_drop`` / ``low_drop`` defaults: moving to the
distinct-offers denominator can only *raise* a window's measured drop
rate (the denominator shrinks, the numerator is unchanged), so the
historic 0.10 / 0.01 cut points now trigger the saturation response
earlier and hold the idle response longer — the conservative direction.
They remain the defaults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["AdaptivePolicy", "AdaptiveController"]

#: Trace reasons a control decision can record.
_SATURATED, _IDLE, _HOLD, _NO_SIGNAL = (
    "saturated", "idle", "hold", "no-signal")


@dataclass(frozen=True)
class AdaptivePolicy:
    """Tuning knobs for the adaptive controller."""

    #: Slots between control decisions.
    interval: int = 2000
    #: Window drop rate (over distinct offers) above which the system is
    #: considered saturated.
    high_drop: float = 0.10
    #: Window drop rate below which the drop signal reads idle.
    low_drop: float = 0.01
    #: Pull share of the window's queue wait (pull / (pull + push)) above
    #: which the backchannel counts as the bottleneck even without drops.
    #: The default 1.0 can never be exceeded, i.e. the decomposition
    #: signal is opt-in; it only acts when the engine feeds wait totals
    #: from a request tracer.
    high_pull_share: float = 1.0
    #: Fleet per-user p99 wait (broadcast units) above which the tail is
    #: considered saturated; None disables the tail-wait input.
    tail_wait_budget: Optional[float] = None
    #: Per-decision adjustment of ThresPerc (fraction of the major cycle).
    thresh_step: float = 0.05
    #: Per-decision adjustment of PullBW.
    pull_bw_step: float = 0.05
    #: Bounds for the controlled parameters.
    min_pull_bw: float = 0.10
    max_pull_bw: float = 0.90
    min_thresh: float = 0.0
    max_thresh: float = 0.75

    def __post_init__(self):
        if self.interval < 1:
            raise ValueError("interval must be positive")
        if not 0.0 <= self.low_drop <= self.high_drop <= 1.0:
            raise ValueError("need 0 <= low_drop <= high_drop <= 1")
        if not 0.0 < self.high_pull_share <= 1.0:
            raise ValueError("high_pull_share must be within (0, 1]")
        if self.tail_wait_budget is not None and self.tail_wait_budget <= 0:
            raise ValueError("tail_wait_budget must be positive")
        if not 0.0 <= self.min_pull_bw <= self.max_pull_bw <= 1.0:
            raise ValueError("invalid pull_bw bounds")
        if not 0.0 <= self.min_thresh <= self.max_thresh <= 1.0:
            raise ValueError("invalid threshold bounds")


class AdaptiveController:
    """Feedback loop over traced signals → (PullBW, ThresPerc).

    The engine calls :meth:`decide` once per control interval with the
    queue's cumulative *distinct* counters (and, when available, the
    request tracer's cumulative wait decomposition and the fleet's
    current per-user p99); the controller differences the cumulative
    inputs into windows and returns the parameters to apply next.
    """

    def __init__(self, policy: AdaptivePolicy, pull_bw: float,
                 thresh_perc: float):
        self.policy = policy
        self.pull_bw = min(max(pull_bw, policy.min_pull_bw),
                           policy.max_pull_bw)
        self.thresh_perc = min(max(thresh_perc, policy.min_thresh),
                               policy.max_thresh)
        self._last_offers = 0
        self._last_dropped = 0
        self._last_push_wait = 0.0
        self._last_pull_wait = 0.0
        #: (time, pull_bw, thresh_perc, window_drop_rate, reason) per
        #: decision; drop rate is NaN for no-signal windows, and reason
        #: is one of "saturated" / "idle" / "hold" / "no-signal".
        self.trace: list[tuple[float, float, float, float, str]] = []

    def _window(self, total: int, last: int) -> int:
        """Difference a cumulative counter, tolerating engine resets."""
        window = total - last
        # A negative window means the engine reset its cumulative
        # counters at a measurement phase boundary; the window restarts
        # from the new totals.
        return total if window < 0 else window

    def decide(self, now: float, total_offers: int, total_dropped: int, *,
               push_wait: Optional[float] = None,
               pull_wait: Optional[float] = None,
               tail_wait: Optional[float] = None) -> tuple[float, float]:
        """One control decision; returns ``(pull_bw, thresh_perc)``.

        Args:
            now: decision time (slots).
            total_offers: cumulative *distinct* offers
                (``queue.enqueued + queue.dropped``).
            total_dropped: cumulative dropped offers.
            push_wait / pull_wait: cumulative wait decomposition totals
                from a request tracer (``WaitBreakdown.push_wait`` /
                ``.pull_wait``), or None when no tracer is attached.
            tail_wait: the fleet's current per-user p99 wait, or None.
        """
        window_offers = self._window(total_offers, self._last_offers)
        window_dropped = self._window(total_dropped, self._last_dropped)
        self._last_offers = total_offers
        self._last_dropped = total_dropped

        pull_share: Optional[float] = None
        if push_wait is not None and pull_wait is not None:
            window_push = push_wait - self._last_push_wait
            window_pull = pull_wait - self._last_pull_wait
            if window_push < 0 or window_pull < 0:  # tracer was swapped
                window_push, window_pull = push_wait, pull_wait
            self._last_push_wait = push_wait
            self._last_pull_wait = pull_wait
            window_wait = window_push + window_pull
            if window_wait > 0:
                pull_share = window_pull / window_wait

        policy = self.policy
        tail_over = (tail_wait is not None
                     and policy.tail_wait_budget is not None
                     and tail_wait > policy.tail_wait_budget)

        if window_offers == 0 and not tail_over:
            # Zero distinct offers carry no signal: the backchannel may be
            # silent because clients are blocked waiting, not because the
            # system is idle.  Hold everything (relaxing here was a bug).
            self.trace.append((now, self.pull_bw, self.thresh_perc,
                               math.nan, _NO_SIGNAL))
            return self.pull_bw, self.thresh_perc

        drop_rate = (window_dropped / window_offers
                     if window_offers else 0.0)
        saturated = (drop_rate > policy.high_drop
                     or (pull_share is not None
                         and pull_share > policy.high_pull_share)
                     or tail_over)
        idle = (not saturated
                and drop_rate < policy.low_drop
                and (pull_share is None
                     or pull_share <= policy.high_pull_share))

        if saturated:
            # Conserve the backchannel, strengthen the push safety net.
            self.thresh_perc = min(self.thresh_perc + policy.thresh_step,
                                   policy.max_thresh)
            self.pull_bw = max(self.pull_bw - policy.pull_bw_step,
                               policy.min_pull_bw)
            reason = _SATURATED
        elif idle:
            # Relax toward responsive pull-heavy operation.
            self.thresh_perc = max(self.thresh_perc - policy.thresh_step,
                                   policy.min_thresh)
            self.pull_bw = min(self.pull_bw + policy.pull_bw_step,
                               policy.max_pull_bw)
            reason = _IDLE
        else:
            reason = _HOLD
        self.trace.append((now, self.pull_bw, self.thresh_perc, drop_rate,
                           reason))
        return self.pull_bw, self.thresh_perc
