"""Dynamic PullBW / threshold control — the paper's future work (§6).

    "We also see the utility in developing more dynamic algorithms that can
    adjust to changes in the system load.  For example, as the contention
    on the server increases, a dynamic algorithm might automatically reduce
    the pull bandwidth at the server and also use a larger threshold at the
    client."

:class:`AdaptiveController` implements exactly that policy as an
additive-increase / additive-decrease loop on the observed drop rate of
the backchannel queue: under saturation it steps the threshold up and the
pull bandwidth down (strengthening the push safety net); when the queue
runs clear it relaxes both so light-load responsiveness returns.  The fast
engine applies it every ``interval`` slots when one is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdaptivePolicy", "AdaptiveController"]


@dataclass(frozen=True)
class AdaptivePolicy:
    """Tuning knobs for the adaptive controller."""

    #: Slots between control decisions.
    interval: int = 2000
    #: Window drop rate above which the system is considered saturated.
    high_drop: float = 0.10
    #: Window drop rate below which the system is considered idle.
    low_drop: float = 0.01
    #: Per-decision adjustment of ThresPerc (fraction of the major cycle).
    thresh_step: float = 0.05
    #: Per-decision adjustment of PullBW.
    pull_bw_step: float = 0.05
    #: Bounds for the controlled parameters.
    min_pull_bw: float = 0.10
    max_pull_bw: float = 0.90
    min_thresh: float = 0.0
    max_thresh: float = 0.75

    def __post_init__(self):
        if self.interval < 1:
            raise ValueError("interval must be positive")
        if not 0.0 <= self.low_drop <= self.high_drop <= 1.0:
            raise ValueError("need 0 <= low_drop <= high_drop <= 1")
        if not 0.0 <= self.min_pull_bw <= self.max_pull_bw <= 1.0:
            raise ValueError("invalid pull_bw bounds")
        if not 0.0 <= self.min_thresh <= self.max_thresh <= 1.0:
            raise ValueError("invalid threshold bounds")


class AdaptiveController:
    """Feedback loop over window drop rate → (PullBW, ThresPerc).

    The engine calls :meth:`decide` once per control interval with the
    queue's cumulative counters; the controller differences them into a
    window and returns the parameters to apply next.
    """

    def __init__(self, policy: AdaptivePolicy, pull_bw: float,
                 thresh_perc: float):
        self.policy = policy
        self.pull_bw = min(max(pull_bw, policy.min_pull_bw),
                           policy.max_pull_bw)
        self.thresh_perc = min(max(thresh_perc, policy.min_thresh),
                               policy.max_thresh)
        self._last_offers = 0
        self._last_dropped = 0
        #: (time, pull_bw, thresh_perc, window_drop_rate) per decision.
        self.trace: list[tuple[float, float, float, float]] = []

    def decide(self, now: float, total_offers: int,
               total_dropped: int) -> tuple[float, float]:
        """One control decision; returns ``(pull_bw, thresh_perc)``."""
        window_offers = total_offers - self._last_offers
        window_dropped = total_dropped - self._last_dropped
        if window_offers < 0 or window_dropped < 0:
            # The engine reset its cumulative counters at a measurement
            # phase boundary; the window restarts from the new totals.
            window_offers = total_offers
            window_dropped = total_dropped
        self._last_offers = total_offers
        self._last_dropped = total_dropped
        drop_rate = (window_dropped / window_offers) if window_offers else 0.0

        policy = self.policy
        if drop_rate > policy.high_drop:
            # Saturated: conserve the backchannel, strengthen the push net.
            self.thresh_perc = min(self.thresh_perc + policy.thresh_step,
                                   policy.max_thresh)
            self.pull_bw = max(self.pull_bw - policy.pull_bw_step,
                               policy.min_pull_bw)
        elif drop_rate < policy.low_drop:
            # Idle: relax toward responsive pull-heavy operation.
            self.thresh_perc = max(self.thresh_perc - policy.thresh_step,
                                   policy.min_thresh)
            self.pull_bw = min(self.pull_bw + policy.pull_bw_step,
                               policy.max_pull_bw)
        self.trace.append((now, self.pull_bw, self.thresh_perc, drop_rate))
        return self.pull_bw, self.thresh_perc
