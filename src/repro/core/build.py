"""Wire a :class:`~repro.core.config.SystemConfig` into live components.

Randomness discipline: every stochastic component gets its own generator
spawned from one :class:`numpy.random.SeedSequence`, so changing, say, the
Noise setting never shifts the virtual client's draw sequence — sweeps stay
comparable point to point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.broadcast.chopping import chop_assignment
from repro.broadcast.offset import apply_offset
from repro.broadcast.program import DiskAssignment, build_schedule
from repro.broadcast.schedule import Schedule
from repro.cache.base import Cache
from repro.cache.p import PPolicy
from repro.cache.pix import PixPolicy
from repro.cache.values import top_valued_pages, value_positions
from repro.client.measured import MeasuredClient
from repro.client.threshold import ThresholdFilter
from repro.client.virtual import VirtualClient
from repro.core.config import SystemConfig
from repro.server.broadcast_server import BroadcastServer
from repro.server.schedulers import (
    PullScheduler,
    PushReprogrammer,
    make_scheduler,
)
from repro.workload.noise import noisy_probabilities
from repro.workload.zipf import zipf_probabilities

if TYPE_CHECKING:
    from repro.fleet.state import FleetState

__all__ = ["SystemState", "build_system", "build_push_program",
           "make_pull_scheduler"]


@dataclass
class SystemState:
    """Everything a simulation engine needs, fully constructed."""

    config: SystemConfig
    #: Aggregate (server-view) access probabilities; page id == rank.
    vc_probabilities: np.ndarray
    #: The measured client's (possibly Noise-perturbed) probabilities.
    mc_probabilities: np.ndarray
    #: The push program, or None for Pure-Pull.
    schedule: Optional[Schedule]
    server: BroadcastServer
    mc: MeasuredClient
    vc: VirtualClient
    #: Threshold filter the MC applies before pulling.
    mc_threshold: ThresholdFilter
    #: Pages a fully-warm aggregate cache holds (VC absorption set).
    steady_set: frozenset[int]
    #: The MC's own top-valued pages (Figure 4's warm-up target).
    warmup_target: frozenset[int]
    #: Individually tracked client population, or None when
    #: ``config.fleet.num_clients`` is 0.
    fleet: Optional["FleetState"] = None
    #: Temperature-driven push-program rebuilder, or None when
    #: ``config.scheduler.reprogram_interval`` is 0.  Both engines poll
    #: it every ``interval`` slots and apply the swap to the server and
    #: every schedule-derived client table.
    reprogrammer: Optional[PushReprogrammer] = None


def build_push_program(config: SystemConfig,
                       vc_probabilities: np.ndarray) -> Optional[Schedule]:
    """Build the (possibly offset and chopped) periodic program."""
    if not config.algorithm.has_push_program:
        return None
    server = config.server
    ranked = list(range(server.db_size))  # page id == aggregate rank
    if server.offset:
        assignment = apply_offset(ranked, server.disk_sizes,
                                  server.rel_freqs, config.client.cache_size)
    else:
        assignment = DiskAssignment.from_ranking(
            ranked, server.disk_sizes, server.rel_freqs)
    if server.chop:
        assignment = chop_assignment(assignment, server.chop,
                                     vc_probabilities)
    return build_schedule(assignment)


def make_pull_scheduler(config: SystemConfig) -> PullScheduler:
    """The pull-queue discipline selected by ``config.scheduler``.

    Temperature tracking is enabled only when reprogramming will consume
    it, so the default path adds no per-offer bookkeeping.
    """
    sched = config.scheduler
    return make_scheduler(sched.discipline, aging=sched.aging,
                          track_temperature=sched.reprogram_interval > 0)


def _make_reprogrammer(config: SystemConfig) -> Optional[PushReprogrammer]:
    """The push-program rebuilder, when ``config.scheduler`` asks for one."""
    sched = config.scheduler
    if sched.reprogram_interval == 0:
        return None
    return PushReprogrammer(
        config.server.db_size, config.server.disk_sizes,
        config.server.rel_freqs, interval=sched.reprogram_interval,
        min_requests=sched.reprogram_min_requests)


def _make_policy(config: SystemConfig, mc_probs: np.ndarray,
                 frequencies, metric: str):
    """The MC's replacement policy (ClientConfig.cache_policy)."""
    from repro.cache.lix import LixPolicy
    from repro.cache.lru import LruPolicy

    choice = config.client.cache_policy
    if choice == "auto":
        choice = metric  # the paper's pairing: PIX unless Pure-Pull
    if choice == "pix":
        return PixPolicy(mc_probs, frequencies or {})
    if choice == "p":
        return PPolicy(mc_probs)
    if choice == "lru":
        return LruPolicy()
    return LixPolicy(frequencies or {})


def build_system(config: SystemConfig) -> SystemState:
    """Construct the complete simulated system for ``config``."""
    seed_seq = np.random.SeedSequence(config.run.seed)
    # The fleet child is spawned LAST so fleet-less configs keep the exact
    # historic draw sequences (archived baselines stay bit-identical).
    noise_rng, mc_rng, vc_rng, mux_rng, fleet_rng = (
        np.random.default_rng(s) for s in seed_seq.spawn(5))

    rank_probs = zipf_probabilities(config.server.db_size,
                                    config.client.zipf_theta)
    vc_probs = rank_probs  # VC: page id == rank
    mc_probs = noisy_probabilities(rank_probs, config.client.noise, noise_rng)

    schedule = build_push_program(config, vc_probs)
    frequencies = schedule.frequencies() if schedule is not None else None
    metric = config.algorithm.cache_metric

    cache_size = config.client.cache_size
    steady_set = top_valued_pages(
        vc_probs, frequencies, max(cache_size - 1, 0), metric)
    warmup_target = top_valued_pages(
        mc_probs, frequencies, cache_size, metric)

    cache = Cache(cache_size,
                  _make_policy(config, mc_probs, frequencies, metric))

    threshold = ThresholdFilter(schedule, config.thresh_perc)
    server = BroadcastServer(schedule, config.server.queue_size,
                             config.pull_bw, mux_rng,
                             scheduler=make_pull_scheduler(config))
    mc = MeasuredClient(mc_probs, cache, config.client.think_time, mc_rng,
                        warmup_target=warmup_target or None)
    vc = VirtualClient(
        vc_probs, steady_set, config.client.steady_state_perc,
        config.client.think_time, config.client.think_time_ratio,
        threshold, vc_rng)

    fleet = None
    if config.fleet.num_clients > 0:
        # Imported here, not at module scope: repro.fleet pulls in the
        # experiments layer, which imports the engines, which import this
        # module — the cycle only resolves with a call-time import.
        from repro.fleet.state import FleetState

        fleet = FleetState(
            num_clients=config.fleet.num_clients,
            mean_think_time=config.fleet.think_time,
            think_time_spread=config.fleet.think_time_spread,
            zipf_offset_spread=config.fleet.zipf_offset_spread,
            cache_size=config.fleet.cache_size,
            cache_size_spread=config.fleet.cache_size_spread,
            steady_state_perc=config.client.steady_state_perc,
            probabilities=vc_probs,
            value_order=value_positions(vc_probs, frequencies, metric),
            threshold=threshold,
            rng=fleet_rng,
        )
    return SystemState(
        config=config,
        vc_probabilities=vc_probs,
        mc_probabilities=mc_probs,
        schedule=schedule,
        server=server,
        mc=mc,
        vc=vc,
        mc_threshold=threshold,
        steady_set=steady_set,
        warmup_target=warmup_target,
        fleet=fleet,
        reprogrammer=_make_reprogrammer(config),
    )
