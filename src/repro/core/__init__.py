"""The paper's primary contribution: integrated push/pull data delivery.

- :mod:`~repro.core.algorithms` — Pure-Push, Pure-Pull, and IPP,
- :mod:`~repro.core.config` — parameter dataclasses mirroring Tables 1–3,
- :mod:`~repro.core.build` — wiring configs into simulated systems,
- :mod:`~repro.core.simulation` — the readable event-driven reference engine,
- :mod:`~repro.core.fast` — the optimized slot-driven engine the
  experiments use,
- :mod:`~repro.core.metrics` — run results (response times, drop rates,
  warm-up traces),
- :mod:`~repro.core.adaptive` — a feedback controller for PullBW /
  threshold (the paper's future-work extension).
"""

from repro.core.algorithms import Algorithm
from repro.core.config import (
    ClientConfig,
    RunConfig,
    ServerConfig,
    SystemConfig,
    PAPER_SETTINGS,
)
from repro.core.metrics import RunResult, TallySnapshot
from repro.core.build import build_system, SystemState
from repro.core.fast import FastEngine, simulate
from repro.core.simulation import ReferenceEngine

__all__ = [
    "Algorithm",
    "ClientConfig",
    "ServerConfig",
    "RunConfig",
    "SystemConfig",
    "PAPER_SETTINGS",
    "RunResult",
    "TallySnapshot",
    "build_system",
    "SystemState",
    "FastEngine",
    "ReferenceEngine",
    "simulate",
]
