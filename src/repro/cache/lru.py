"""Least-recently-used replacement — the baseline the paper argues against.

[Acha95a] shows that purely probability/recency-driven replacement can
perform poorly against a multi-disk broadcast because it ignores refetch
cost.  LRU is provided so that ablation benchmarks can reproduce that
comparison.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import ReplacementPolicy

__all__ = ["LruPolicy"]


class LruPolicy(ReplacementPolicy):
    """Eject the least recently used resident page."""

    def __init__(self):
        self._order: OrderedDict[int, None] = OrderedDict()

    def on_insert(self, page: int, now: float) -> None:
        """See :meth:`ReplacementPolicy.on_insert`."""
        self._order[page] = None
        self._order.move_to_end(page)

    def on_hit(self, page: int, now: float) -> None:
        """See :meth:`ReplacementPolicy.on_hit`."""
        self._order.move_to_end(page)

    def on_evict(self, page: int) -> None:
        """See :meth:`ReplacementPolicy.on_evict`."""
        self._order.pop(page, None)

    def choose_victim(self) -> int:
        """See :meth:`ReplacementPolicy.choose_victim`."""
        if not self._order:
            raise RuntimeError("choose_victim() on an empty cache")
        return next(iter(self._order))
