"""Cache container and replacement-policy interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Optional

__all__ = ["Cache", "ReplacementPolicy"]


class ReplacementPolicy(ABC):
    """Strategy deciding which resident page to eject.

    The :class:`Cache` notifies the policy of every insert, hit, and
    eviction; :meth:`choose_victim` must return a currently resident page.
    ``now`` is the simulation time, used only by recency-aware policies.
    """

    @abstractmethod
    def on_insert(self, page: int, now: float) -> None:
        """A page was brought into the cache."""

    @abstractmethod
    def on_hit(self, page: int, now: float) -> None:
        """A resident page was accessed."""

    @abstractmethod
    def on_evict(self, page: int) -> None:
        """A page was ejected."""

    @abstractmethod
    def choose_victim(self) -> int:
        """Pick the resident page to eject next."""


class Cache:
    """A fixed-capacity page cache driven by a replacement policy.

    The container tracks residency; all ranking lives in the policy.  A
    ``capacity`` of 0 models cache-less clients (every access misses and
    inserts are dropped).
    """

    def __init__(self, capacity: int, policy: ReplacementPolicy):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.policy = policy
        self._resident: set[int] = set()

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, page: int) -> bool:
        return page in self._resident

    @property
    def pages(self) -> frozenset[int]:
        """Snapshot of resident pages."""
        return frozenset(self._resident)

    @property
    def is_full(self) -> bool:
        """True when the cache is at capacity."""
        return len(self._resident) >= self.capacity

    def access(self, page: int, now: float = 0.0) -> bool:
        """Look up ``page``; returns True on a hit (updating recency)."""
        if page in self._resident:
            self.policy.on_hit(page, now)
            return True
        return False

    def insert(self, page: int, now: float = 0.0) -> Optional[int]:
        """Bring ``page`` in, ejecting a victim if full.

        Returns the evicted page id, or None if nothing was ejected.
        Inserting a resident page is treated as a hit.  With capacity 0
        the insert is silently dropped.
        """
        if self.capacity == 0:
            return None
        if page in self._resident:
            self.policy.on_hit(page, now)
            return None
        victim: Optional[int] = None
        if len(self._resident) >= self.capacity:
            victim = self.policy.choose_victim()
            if victim not in self._resident:
                raise RuntimeError(
                    f"policy chose non-resident victim {victim}")
            self._resident.remove(victim)
            self.policy.on_evict(victim)
        self._resident.add(page)
        self.policy.on_insert(page, now)
        return victim

    def warm_fraction(self, target: Iterable[int]) -> float:
        """Fraction of ``target`` pages currently resident.

        Used for the Figure 4 warm-up metric ("percentage of the CacheSize
        highest valued pages that are in the cache").
        """
        target = set(target)
        if not target:
            return 1.0
        return len(target & self._resident) / len(target)
