"""Client cache management.

The paper's central cache result is that replacement must be *cost-based*
in a broadcast environment: the value of a cached page depends both on its
access probability ``p`` and on how quickly it returns on the broadcast
(``x``, its broadcast frequency).

- :class:`~repro.cache.pix.PixPolicy` — PIX, eject the lowest ``p/x``
  (used for Pure-Push and IPP),
- :class:`~repro.cache.p.PPolicy` — P, eject the lowest ``p`` (used for
  Pure-Pull, where there is no periodic broadcast),
- :class:`~repro.cache.lru.LruPolicy` — the classic baseline the paper's
  earlier work shows performs poorly here,
- :class:`~repro.cache.lix.LixPolicy` — LIX, the implementable
  LRU-style approximation of PIX from [Acha95b] (extension).
"""

from repro.cache.base import Cache, ReplacementPolicy
from repro.cache.pix import PixPolicy
from repro.cache.p import PPolicy
from repro.cache.lru import LruPolicy
from repro.cache.lix import LixPolicy
from repro.cache.values import page_values, top_valued_pages

__all__ = [
    "Cache",
    "ReplacementPolicy",
    "PixPolicy",
    "PPolicy",
    "LruPolicy",
    "LixPolicy",
    "page_values",
    "top_valued_pages",
]
