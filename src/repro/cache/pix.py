"""The PIX cost-based replacement policy (Section 2.1).

PIX ejects the resident page with the lowest ``p / x``: a page's value
rises with its access probability and falls with how frequently the
broadcast re-delivers it.  In the paper's example, a page with
``p = 0.3, x = 4`` is ejected before one with ``p = 0.1, x = 1``.

Because both ``p`` and ``x`` are fixed for a run, values are static; the
policy keeps a lazy min-heap of ``(value, page)`` entries, skipping entries
for pages that are no longer resident.
"""

from __future__ import annotations

import heapq
from typing import Mapping, Sequence

from repro.cache.base import ReplacementPolicy
from repro.cache.values import page_values

__all__ = ["PixPolicy", "StaticValuePolicy"]


class StaticValuePolicy(ReplacementPolicy):
    """Evict-minimum policy over per-page static value keys."""

    def __init__(self, values: Sequence[tuple[float, float]]):
        self._values = list(values)
        self._resident: set[int] = set()
        self._heap: list[tuple[float, float, int]] = []

    def value(self, page: int) -> tuple[float, float]:
        """The static value key of ``page`` (smaller = ejected sooner)."""
        return self._values[page]

    def on_insert(self, page: int, now: float) -> None:
        """See :meth:`ReplacementPolicy.on_insert`."""
        self._resident.add(page)
        primary, secondary = self._values[page]
        heapq.heappush(self._heap, (primary, secondary, page))

    def on_hit(self, page: int, now: float) -> None:
        """See :meth:`ReplacementPolicy.on_hit`."""
        pass  # value is independent of recency

    def on_evict(self, page: int) -> None:
        """See :meth:`ReplacementPolicy.on_evict`."""
        self._resident.discard(page)

    def choose_victim(self) -> int:
        """See :meth:`ReplacementPolicy.choose_victim`."""
        # Lazily discard heap entries for pages already ejected.  A resident
        # page has exactly one live entry (duplicates from re-insertion are
        # value-identical, so popping any of them is equivalent).
        while self._heap:
            _, _, page = self._heap[0]
            if page in self._resident:
                # Pop it now; if the cache rejects the eviction it would be
                # a kernel bug, surfaced by Cache.insert's residency check.
                heapq.heappop(self._heap)
                self._resident.discard(page)
                return page
            heapq.heappop(self._heap)
        raise RuntimeError("choose_victim() on an empty cache")


class PixPolicy(StaticValuePolicy):
    """PIX: eject the lowest ``p / x``.

    Pages missing from ``frequencies`` (pull-only) are valued at the
    slowest broadcast frequency — see :mod:`repro.cache.values` for the
    rationale.
    """

    def __init__(self, probabilities: Sequence[float],
                 frequencies: Mapping[int, int]):
        super().__init__(page_values(probabilities, frequencies, metric="pix"))
