"""LIX — the implementable approximation of PIX from [Acha95b] (extension).

PIX assumes perfect knowledge of access probabilities.  LIX estimates them
online: pages are kept in one LRU chain per broadcast frequency, each page
carries an exponentially-smoothed estimate of its access *rate*, and the
victim is the chain-tail page with the smallest ``rate_estimate / x``.
Examining only chain tails keeps eviction O(#frequencies) while closely
tracking PIX's ranking once estimates converge.

This policy is not used by the paper's headline experiments (which assume
known probabilities); it powers the cache-policy ablation benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping

from repro.cache.base import ReplacementPolicy

__all__ = ["LixPolicy"]


class LixPolicy(ReplacementPolicy):
    """Eject the chain tail with the lowest estimated ``rate / x``."""

    def __init__(self, frequencies: Mapping[int, int], smoothing: float = 0.25):
        """Args:
            frequencies: broadcast frequency per page (pages missing from
                the mapping are treated as non-broadcast, frequency 0).
            smoothing: weight of the newest inter-access observation in the
                exponential rate estimate (0 < smoothing <= 1).
        """
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self._frequencies = frequencies
        self._smoothing = smoothing
        # Pull-only pages join the slowest chain (see repro.cache.values).
        self._slowest = min(frequencies.values(), default=1)
        # One LRU chain per distinct broadcast frequency.
        self._chains: dict[int, OrderedDict[int, None]] = {}
        self._rate: dict[int, float] = {}
        self._last_access: dict[int, float] = {}

    def _frequency(self, page: int) -> int:
        return self._frequencies.get(page, self._slowest)

    def _observe(self, page: int, now: float) -> None:
        previous = self._last_access.get(page)
        self._last_access[page] = now
        if previous is None or now <= previous:
            return
        sample = 1.0 / (now - previous)
        old = self._rate.get(page, sample)
        self._rate[page] = (self._smoothing * sample
                            + (1.0 - self._smoothing) * old)

    def on_insert(self, page: int, now: float) -> None:
        """See :meth:`ReplacementPolicy.on_insert`."""
        chain = self._chains.setdefault(self._frequency(page), OrderedDict())
        chain[page] = None
        chain.move_to_end(page)
        self._observe(page, now)

    def on_hit(self, page: int, now: float) -> None:
        """See :meth:`ReplacementPolicy.on_hit`."""
        chain = self._chains[self._frequency(page)]
        chain.move_to_end(page)
        self._observe(page, now)

    def on_evict(self, page: int) -> None:
        """See :meth:`ReplacementPolicy.on_evict`."""
        chain = self._chains.get(self._frequency(page))
        if chain is not None:
            chain.pop(page, None)

    def _lix_value(self, page: int) -> float:
        frequency = self._frequency(page)
        rate = self._rate.get(page, 0.0)
        if frequency == 0:
            # Defensive: reachable only if the caller's frequency mapping
            # explicitly contains zeros (pull-only pages normally map to
            # the slowest chain instead); treat such pages as priceless.
            return float("inf")
        return rate / frequency

    def choose_victim(self) -> int:
        """See :meth:`ReplacementPolicy.choose_victim`."""
        best_page: int | None = None
        best_value = float("inf")
        for chain in self._chains.values():
            if not chain:
                continue
            tail = next(iter(chain))
            value = self._lix_value(tail)
            if best_page is None or value < best_value:
                best_page, best_value = tail, value
        if best_page is None:
            raise RuntimeError("choose_victim() on an empty cache")
        return best_page
