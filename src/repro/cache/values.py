"""Page-value metrics shared by caches, clients, and experiments.

The paper evaluates a page's worth with one of two metrics (footnote 4):

- ``P``  — the access probability ``p`` (Pure-Pull, no broadcast),
- ``PIX`` — ``p / x`` where ``x`` is the page's broadcast frequency
  (Pure-Push and IPP).

Pages absent from the push program (Experiment 3's chopped pages) have no
``x``.  Valuing them as infinitely expensive would freeze every chopped
page into the cache on first touch — caches would silt up with
never-again-accessed cold pages and stop holding the hot set, a
degenerate equilibrium the paper clearly does not exhibit.  Instead we
treat a pull-only page as *at least as expensive as the slowest pushed
page*: its PIX uses the slowest remaining broadcast frequency, so among
equally-slow pages the access probability decides, and hot chopped pages
rank exactly where intuition puts them.  (DESIGN.md §4 discusses this
choice.)
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["page_values", "top_valued_pages", "value_positions",
           "rank_by_probability"]


def page_values(probabilities: Sequence[float],
                frequencies: Mapping[int, int] | None,
                metric: str = "pix") -> list[tuple[float, float]]:
    """Per-page value keys, indexed by page id.

    Returns ``(primary, secondary)`` tuples ordered so that tuple comparison
    ranks pages from least to most valuable: primary is the metric value
    (``p`` or ``p/x``), secondary is ``p`` as the tie-breaker.  Pages
    missing from ``frequencies`` (pull-only) use the slowest frequency
    present, per the module docstring.
    """
    if metric not in ("pix", "p"):
        raise ValueError(f"unknown value metric {metric!r}")
    if metric == "p" or frequencies is None:
        return [(float(p), float(p)) for p in probabilities]
    slowest = min(frequencies.values(), default=1)
    values: list[tuple[float, float]] = []
    for page, prob in enumerate(probabilities):
        frequency = frequencies.get(page, slowest)
        values.append((float(prob) / frequency, float(prob)))
    return values


def top_valued_pages(probabilities: Sequence[float],
                     frequencies: Mapping[int, int] | None,
                     count: int, metric: str = "pix") -> frozenset[int]:
    """The ``count`` most valuable pages under the chosen metric.

    This is the set a completely warmed-up cache holds — used for the
    virtual client's steady-state filter and for Figure 4's warm-up target.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    values = page_values(probabilities, frequencies, metric)
    order = sorted(range(len(values)), key=values.__getitem__, reverse=True)
    return frozenset(order[:count])


def value_positions(probabilities: Sequence[float],
                    frequencies: Mapping[int, int] | None,
                    metric: str = "pix") -> np.ndarray:
    """Each page's position in the most-valuable-first ordering.

    ``value_positions(...)[page] == 0`` for the most valuable page.  Uses
    the same sort (and tie-break) as :func:`top_valued_pages`, so for any
    ``k``::

        frozenset(np.flatnonzero(value_positions(p, f) < k))
            == top_valued_pages(p, f, k)

    The client fleet uses this as a vectorized absorption test: a warm
    cache of size ``c`` absorbs exactly the pages at positions below
    ``c`` (one gather per batch instead of a set probe per request).
    """
    values = page_values(probabilities, frequencies, metric)
    order = sorted(range(len(values)), key=values.__getitem__, reverse=True)
    positions = np.empty(len(values), dtype=np.int64)
    positions[np.asarray(order, dtype=np.int64)] = np.arange(
        len(values), dtype=np.int64)
    return positions


def rank_by_probability(probabilities: Sequence[float]) -> list[int]:
    """Page ids sorted hottest-first (stable for equal probabilities)."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    # argsort of the negated vector is stable with kind="stable".
    return list(np.argsort(-probabilities, kind="stable"))
