"""The P replacement policy (Section 3.1).

For Pure-Pull there is no periodic broadcast, so refetch cost is uniform
and the victim is simply "the cache-resident page with the lowest
probability of access (p)".
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.pix import StaticValuePolicy
from repro.cache.values import page_values

__all__ = ["PPolicy"]


class PPolicy(StaticValuePolicy):
    """P: eject the resident page with the lowest access probability."""

    def __init__(self, probabilities: Sequence[float]):
        super().__init__(page_values(probabilities, None, metric="p"))
