"""Pull-scheduler overhead benchmark: what each discipline costs.

Two layers:

- **queue microbench** — drives a
  :class:`~repro.server.queue.BoundedRequestQueue` directly with
  synthetic offer/pop traffic at a given capacity, isolating the
  discipline's own cost: the ``on_*`` hook bookkeeping per offer and the
  ``select`` scan per pop (O(1) for FIFO, O(depth) for RxW/LWF).  The
  headline number is ``ops_per_sec`` (offers + pops / elapsed).
- **engine bench** — a small IPP system simulated end to end per
  discipline, reporting ``slots_per_sec``; shows what the microbench
  deltas amount to inside the full slot loop (the queue is a small
  fraction of a slot's work, so disciplines should be within noise of
  each other here).

Usage::

    python benchmarks/bench_sched.py            # full grid
    python benchmarks/bench_sched.py --smoke    # CI: tiny, fast

Results land in ``BENCH_sched.json`` at the repo root (``--out`` to
move them).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.algorithms import Algorithm  # noqa: E402
from repro.core.config import SystemConfig  # noqa: E402
from repro.core.fast import FastEngine  # noqa: E402
from repro.server.queue import BoundedRequestQueue  # noqa: E402
from repro.server.schedulers import DISCIPLINES, make_scheduler  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_sched.json"


def bench_queue(discipline: str, capacity: int, ops: int,
                seed: int) -> dict:
    """Synthetic offer/pop traffic straight at the queue."""
    rng = np.random.default_rng(seed)
    # Page universe 4x capacity: keeps the queue near full (drops and
    # duplicates both occur) so select scans the worst-case depth.
    pages = rng.integers(0, capacity * 4, size=ops)
    queue = BoundedRequestQueue(capacity, make_scheduler(discipline))
    pops = 0
    start = perf_counter()
    for i in range(ops):
        queue.now = i
        queue.offer(int(pages[i]))
        if i % 3 == 0 and len(queue):
            queue.pop()
            pops += 1
    elapsed = perf_counter() - start
    return {
        "discipline": discipline,
        "capacity": capacity,
        "offers": ops,
        "pops": pops,
        "reordered": queue.scheduler.reordered,
        "elapsed_s": round(elapsed, 4),
        "ops_per_sec": round((ops + pops) / elapsed),
    }


def bench_engine(discipline: str, measure_accesses: int,
                 seed: int) -> dict:
    """A whole IPP run per discipline, timing the slot loop."""
    config = SystemConfig(algorithm=Algorithm.IPP).with_(
        scheduler__discipline=discipline,
        server__pull_bw=0.3,
        run__settle_accesses=measure_accesses // 4,
        run__measure_accesses=measure_accesses,
        run__seed=seed,
    )
    start = perf_counter()
    result = FastEngine(config).run()
    elapsed = perf_counter() - start
    return {
        "discipline": discipline,
        "measure_accesses": measure_accesses,
        "measured_slots": result.measured_slots,
        "mean_response": round(result.response_miss.mean, 3),
        "elapsed_s": round(elapsed, 4),
        "slots_per_sec": round(result.measured_slots / elapsed),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI (results not archived)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"result JSON (default: {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    ops = 20_000 if args.smoke else 400_000
    accesses = 300 if args.smoke else 3000
    capacities = (5, 50) if args.smoke else (5, 50, 250)

    queue_results = [bench_queue(disc, capacity, ops, args.seed)
                     for capacity in capacities
                     for disc in DISCIPLINES]
    engine_results = [bench_engine(disc, accesses, args.seed)
                      for disc in DISCIPLINES]

    print(f"{'discipline':>10} {'capacity':>8} {'ops/s':>12} "
          f"{'reordered':>9}")
    for row in queue_results:
        print(f"{row['discipline']:>10} {row['capacity']:>8} "
              f"{row['ops_per_sec']:>12,} {row['reordered']:>9}")
    print(f"\n{'discipline':>10} {'slots/s':>12} {'mean resp':>10}")
    for row in engine_results:
        print(f"{row['discipline']:>10} {row['slots_per_sec']:>12,} "
              f"{row['mean_response']:>10}")

    payload = {
        "bench": "sched",
        "smoke": args.smoke,
        "seed": args.seed,
        "queue": queue_results,
        "engine": engine_results,
    }
    if args.smoke:
        print("\n[smoke mode: results not archived]")
        return 0
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[results -> {args.out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
