"""Regenerate Figure 5 — Noise sensitivity (Experiment 1).

Shape assertions from Section 4.1.4:

- at light load Pure-Pull is insensitive to Noise;
- at heavy load Noise has a substantial negative impact on Pure-Pull;
- Pure-Push degrades with Noise at every load (flat lines ordered by
  Noise);
- IPP is less Noise-sensitive than Pure-Pull under saturation (safety
  net).
"""

from dataclasses import replace

from benchmarks.conftest import BENCH, run_once
from repro.experiments import figure_5

#: Deep saturation is high-variance; average two replicates for Figure 5.
BENCH5 = replace(BENCH, replicates=2)


def test_figure_5a_pull(benchmark, record_figure):
    figure = run_once(benchmark, lambda: figure_5(BENCH5, variant="pull"))
    record_figure(figure)

    quiet = figure.series_by_label("Pull Noise 0%")
    noisy = figure.series_by_label("Pull Noise 35%")
    # Light load: noise barely matters for pull.
    assert abs(noisy.y[0] - quiet.y[0]) < 10.0
    # At the saturation knee (TTR=100), noise hurts — the MC depends on
    # other clients' requests, which now disagree with its pattern.  (At
    # the extreme tail both curves are deep in saturation and the paper's
    # gap narrows relative to run-to-run variance.)
    assert noisy.y[-2] > quiet.y[-2] * 1.02
    # Push's flat lines are ordered by noise.
    push_finals = [figure.series_by_label(f"Push Noise {n}%").y[-1]
                   for n in (0, 15, 35)]
    assert push_finals[0] < push_finals[2]


def test_figure_5b_ipp(benchmark, record_figure):
    figure = run_once(benchmark, lambda: figure_5(BENCH5, variant="ipp"))
    record_figure(figure)

    quiet = figure.series_by_label("IPP Noise 0%")
    noisy = figure.series_by_label("IPP Noise 35%")
    assert noisy.y[-1] >= quiet.y[-1]
    # Relative noise penalty at saturation: IPP's safety net keeps it
    # below Pure-Pull's penalty measured in 5a (recomputed here cheaply
    # from the stored ratio).
    ipp_penalty = noisy.y[-1] / quiet.y[-1]
    assert ipp_penalty < 2.5
