"""Sampled vs full request tracing: overhead and estimator accuracy.

Two measurements in one bench:

- **Overhead** — synthesizes seeded access lifecycles and drives the
  real :class:`~repro.obs.requests.RequestTracer` hook sequence
  (``on_access .. on_served``) at 10^5-10^6 accesses, full-trace vs
  deterministic 1-in-100 vs a seeded reservoir, over both a ``NullSink``
  and the columnar ``.npy`` sink.  The interesting number is the
  speedup: a skipped access pays one policy decision instead of record
  construction + aggregation + serialization.
- **Accuracy** — compares each sampled run's inverse-probability
  corrected estimates (mean wait, p50/p90/p99) against the full trace's
  on the same stream, reporting relative errors; ``--accuracy-sim``
  additionally runs the figure-3a representative point through the fast
  engine twice (full trace vs 1-in-100) and enforces the 5% acceptance
  bound on corrected mean and p90 — the job CI runs.

Usage::

    python benchmarks/bench_sampling.py                  # full bench
    python benchmarks/bench_sampling.py --smoke          # CI: tiny, fast
    python benchmarks/bench_sampling.py --accuracy-sim   # CI: 5% gate

Results land in ``BENCH_sampling.json`` at the repo root (``--out`` to
move them).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
from pathlib import Path
from time import perf_counter
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_columnar import synthesize  # noqa: E402
from repro.obs.columnar import ColumnarSink  # noqa: E402
from repro.obs.requests import RequestTracer  # noqa: E402
from repro.obs.sampling import EveryNSampling, ReservoirSampling  # noqa: E402
from repro.obs.trace import NullSink  # noqa: E402

DEFAULT_ACCESSES = "100000,1000000"
DEFAULT_OUT = REPO_ROOT / "BENCH_sampling.json"
SAMPLE_EVERY = 100
RESERVOIR_CAPACITY = 10_000


def lifecycles(count: int, seed: int) -> list[tuple]:
    """Plain-tuple hook arguments for ``count`` synthetic accesses.

    Flattened ahead of time so the timed loop measures tracer cost, not
    attribute access on the synthesized records.
    """
    return [(r.page, r.issued_at, r.measured, r.hit,
             r.predicted_push_wait, r.pull_sent, r.pull_outcome,
             r.on_air_at, r.served_kind, r.served_at)
            for r in synthesize(count, seed)]


def drive(tracer: RequestTracer, stream: list[tuple]) -> float:
    """Run the full hook sequence for every access; returns seconds."""
    start = perf_counter()
    for (page, issued_at, measured, hit, predicted, pull_sent, outcome,
         on_air_at, kind, served_at) in stream:
        tracer.on_access(page, issued_at, measured)
        if hit:
            tracer.on_hit(page, issued_at)
            continue
        tracer.on_miss(page, issued_at)
        tracer.on_miss_predict(math.inf if predicted is None else predicted)
        if pull_sent:
            tracer.on_pull(page, issued_at, outcome)
        tracer.on_air(on_air_at, kind)
        tracer.on_served(page, served_at)
    tracer.finalize()
    return perf_counter() - start


def rel_error(estimate: float, exact: float) -> float:
    if exact == 0:
        return abs(estimate)
    return abs(estimate - exact) / abs(exact)


def summarize(tracer: RequestTracer) -> dict:
    stats = tracer.breakdown()
    quantiles = tracer.wait_quantiles() or {}
    return {"mean_wait": stats.mean_wait, **quantiles}


def bench_size(count: int, seed: int, workdir: Path) -> dict:
    stream = lifecycles(count, seed)

    def tracers():
        return {
            "full": RequestTracer(NullSink()),
            "every_100": RequestTracer(
                NullSink(), sampling=EveryNSampling(SAMPLE_EVERY)),
            "reservoir_10k": RequestTracer(
                NullSink(),
                sampling=ReservoirSampling(RESERVOIR_CAPACITY, seed=seed)),
        }

    times: dict[str, float] = {}
    estimates: dict[str, dict] = {}
    for name, tracer in tracers().items():
        times[name] = drive(tracer, stream)
        estimates[name] = summarize(tracer)

    # Columnar-backed variant: the sink actually serializes, so sampling
    # also saves the write path and the on-disk bytes.
    columnar_times: dict[str, float] = {}
    columnar_bytes: dict[str, int] = {}
    for name, sampling in (("full", None),
                           ("every_100", EveryNSampling(SAMPLE_EVERY))):
        path = workdir / f"trace_{count}_{name}.npy"
        tracer = RequestTracer(ColumnarSink(path, table="request"),
                               sampling=sampling)
        columnar_times[name] = drive(tracer, stream)
        tracer.close()
        columnar_bytes[name] = path.stat().st_size

    exact = estimates["full"]
    accuracy = {
        name: {metric: round(rel_error(values[metric], exact[metric]), 4)
               for metric in ("mean_wait", "p50", "p90", "p99")
               if metric in values and metric in exact}
        for name, values in estimates.items() if name != "full"
    }
    return {
        "accesses": count,
        "trace_s": {name: round(seconds, 4)
                    for name, seconds in times.items()},
        "columnar_trace_s": {name: round(seconds, 4)
                             for name, seconds in columnar_times.items()},
        "columnar_bytes": columnar_bytes,
        "speedup": {
            "every_100": round(times["full"] / times["every_100"], 1),
            "reservoir_10k": round(
                times["full"] / times["reservoir_10k"], 1),
            "columnar_every_100": round(
                columnar_times["full"] / columnar_times["every_100"], 1),
        },
        "estimates": {name: {k: round(v, 3) for k, v in values.items()}
                      for name, values in estimates.items()},
        "relative_error": accuracy,
    }


def accuracy_sim(seed: int, measure_accesses: int,
                 tolerance: float = 0.05) -> dict:
    """Engine-level gate: 1-in-100 sampling on the figure-3a point.

    Runs the representative figure-3a configuration (QUICK-style settle,
    ``measure_accesses`` measured accesses) twice — full trace and
    1-in-100 — and checks the corrected mean wait and p90 land within
    ``tolerance`` of the full-trace values.
    """
    from repro.core.fast import FastEngine
    from repro.experiments.points import representative_config

    config = representative_config("3a").with_(
        run__settle_accesses=500,
        run__measure_accesses=measure_accesses,
        run__seed=seed,
        run__max_slots=50_000_000,
    )

    def run(sampling):
        tracer = RequestTracer(NullSink(), sampling=sampling)
        start = perf_counter()
        FastEngine(config, request_tracer=tracer).run()
        elapsed = perf_counter() - start
        return elapsed, summarize(tracer)

    full_s, exact = run(None)
    sampled_s, estimate = run(EveryNSampling(SAMPLE_EVERY))
    errors = {metric: round(rel_error(estimate[metric], exact[metric]), 4)
              for metric in ("mean_wait", "p50", "p90", "p99")
              if metric in exact and metric in estimate}
    ok = (errors["mean_wait"] <= tolerance and errors["p90"] <= tolerance)
    return {
        "figure": "3a",
        "measure_accesses": measure_accesses,
        "sample_every": SAMPLE_EVERY,
        "tolerance": tolerance,
        "run_s": {"full_trace": round(full_s, 2),
                  "sampled": round(sampled_s, 2)},
        "exact": {k: round(v, 3) for k, v in exact.items()},
        "estimate": {k: round(v, 3) for k, v in estimate.items()},
        "relative_error": errors,
        "ok": ok,
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accesses", default=DEFAULT_ACCESSES,
                        help="comma-separated synthetic access counts "
                             f"(default: {DEFAULT_ACCESSES})")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="result JSON path (default: BENCH_sampling"
                             ".json at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny single-size run that only checks the "
                             "bench executes; writes no result file")
    parser.add_argument("--accuracy-sim", action="store_true",
                        help="run the engine-level figure-3a accuracy "
                             "gate only; exit 1 beyond the 5%% bound")
    parser.add_argument("--sim-accesses", type=int, default=120_000,
                        help="measured accesses for --accuracy-sim "
                             "(default: 120000)")
    args = parser.parse_args(argv)

    if args.accuracy_sim:
        gate = accuracy_sim(args.seed, args.sim_accesses)
        print(json.dumps(gate, indent=2))
        if not gate["ok"]:
            print("accuracy gate FAILED: sampled estimates beyond "
                  f"{gate['tolerance']:.0%} of the full trace",
                  file=sys.stderr)
            return 1
        print(f"accuracy gate ok: mean_wait err "
              f"{gate['relative_error']['mean_wait']:.2%}, p90 err "
              f"{gate['relative_error']['p90']:.2%}")
        return 0

    counts = ([5000] if args.smoke
              else [int(c) for c in args.accesses.split(",")])
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        for count in counts:
            entry = bench_size(count, args.seed, Path(tmp))
            results.append(entry)
            print(f"{count:>9} accesses: full {entry['trace_s']['full']:.3f}s"
                  f" vs 1-in-{SAMPLE_EVERY} "
                  f"{entry['trace_s']['every_100']:.4f}s "
                  f"({entry['speedup']['every_100']}x), reservoir "
                  f"{entry['trace_s']['reservoir_10k']:.4f}s "
                  f"({entry['speedup']['reservoir_10k']}x); mean err "
                  f"{entry['relative_error']['every_100'].get('mean_wait')}")
    if args.smoke:
        print("smoke ok")
        return 0
    largest = results[-1]
    if largest["speedup"]["every_100"] < 5.0:
        print(f"FAILED: 1-in-{SAMPLE_EVERY} sampling only "
              f"{largest['speedup']['every_100']}x cheaper than full "
              f"tracing at {largest['accesses']} accesses (need >= 5x)",
              file=sys.stderr)
        return 1
    payload = {
        "bench": "sampled vs full request tracing",
        "seed": args.seed,
        "sample_every": SAMPLE_EVERY,
        "reservoir_capacity": RESERVOIR_CAPACITY,
        "sizes": results,
        "accuracy_sim": accuracy_sim(args.seed, args.sim_accesses),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
