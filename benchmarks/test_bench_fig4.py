"""Regenerate Figure 4 — client cache warm-up time (Experiment 1).

Shape assertions from Section 4.1.3:

- under low-moderate load (TTR=25) Pure-Pull warms up fastest;
- under heavy load (TTR=250) the approaches invert and Pure-Push warms
  up best;
- warm-up time grows monotonically with the warm percentage.
"""

from benchmarks.conftest import BENCH, run_once
from repro.experiments import figure_4


def final_time(series):
    return series.points[-1].mean


def test_figure_4a_light_load(benchmark, record_figure):
    figure = run_once(benchmark,
                      lambda: figure_4(BENCH, think_time_ratio=25))
    record_figure(figure)

    push = figure.series_by_label("Push")
    pull0 = figure.series_by_label("Pull 0%")
    for series in figure.series:
        assert series.points == sorted(series.points, key=lambda p: p.mean)
    # Lightly loaded: Pure-Pull warms up far faster than Pure-Push.
    assert final_time(pull0) < final_time(push) / 2


def test_figure_4b_heavy_load(benchmark, record_figure):
    figure = run_once(benchmark,
                      lambda: figure_4(BENCH, think_time_ratio=250))
    record_figure(figure)

    push = figure.series_by_label("Push")
    pull0 = figure.series_by_label("Pull 0%")
    pull95 = figure.series_by_label("Pull 95%")
    # Heavily loaded: the ordering inverts — push warms up best.
    assert final_time(push) < final_time(pull0)
    assert final_time(push) < final_time(pull95)
