"""Serving-layer loopback benchmark: fan-out scaling + clock headroom.

Runs a :class:`repro.net.server.NetServer` on loopback with N raw
reader connections (pure fan-out consumers, no think-time model) and
measures:

- **fan-out scaling**: PAGE frames delivered per second and per-slot
  delivery cost as the client count grows at a fixed slot rate, and
- **clock headroom**: the fraction of slots that missed their
  wall-clock deadline (``net_lagging_slots_total``) as the slot
  duration shrinks — the smallest sustainable slot duration bounds the
  broadcast rates ``serve`` can honestly provide on this host.

Every run also asserts the delivery invariant: each connected reader
sees every page-carrying slot (no shed frames at benchmark scale), so
the timing compares correct work.

Usage::

    python benchmarks/bench_net.py             # full matrix
    python benchmarks/bench_net.py --smoke     # CI: tiny, fast, no file

Results land in ``BENCH_net.json`` at the repo root (``--out`` moves
them).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from time import perf_counter
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.algorithms import Algorithm  # noqa: E402
from repro.core.config import SystemConfig  # noqa: E402
from repro.net.protocol import FrameDecoder, Page  # noqa: E402
from repro.net.server import NetServer, NetServerSettings  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_net.json"
CONFIG = SystemConfig(algorithm=Algorithm.IPP)


async def _reader(host: str, port: int, counts: list[int],
                  index: int, start: dict) -> None:
    """Count PAGE frames with slot >= the common measurement start."""
    reader, writer = await asyncio.open_connection(host, port)
    decoder = FrameDecoder()
    try:
        while True:
            data = await reader.read(1 << 16)
            if not data:
                return
            from_slot = start["slot"]
            counts[index] += sum(
                isinstance(f, Page)
                and from_slot is not None and f.slot >= from_slot
                for f in decoder.feed(data))
    except (ConnectionError, OSError, asyncio.CancelledError):
        return
    finally:
        writer.close()


async def _run_once(clients: int, slots: int,
                    slot_duration: float) -> dict:
    registry = MetricsRegistry()
    server = NetServer(
        CONFIG,
        NetServerSettings(slot_duration=slot_duration, max_slots=slots),
        registry=registry)
    await server.start()
    counts = [0] * clients
    start: dict = {"slot": None}
    tasks = [asyncio.create_task(
        _reader(server.settings.host, server.port, counts, i, start))
        for i in range(clients)]
    # Slots ticked before every reader is registered would reach only
    # some of them; begin the measurement window strictly after.
    while server.connected_clients < clients:
        await asyncio.sleep(slot_duration)
    start["slot"] = server.slot + 1
    started = perf_counter()
    await server.wait_finished()
    elapsed = perf_counter() - started
    # Let the tail of the frame stream cross the loopback.
    await asyncio.sleep(max(0.05, 10 * slot_duration))
    snapshot = registry.snapshot()
    stats = server.stats_snapshot()
    await server.stop()
    for task in tasks:
        task.cancel()
    await asyncio.gather(*tasks, return_exceptions=True)

    page_slots = sum(stats["server"]["slots"].get(k, 0)
                     for k in ("push", "pull"))
    shed = snapshot["net_frames_shed_total"]["value"]
    if shed == 0 and len(set(counts)) != 1:
        raise AssertionError(
            "delivery invariant broken: readers saw differing frame "
            f"counts {sorted(set(counts))} inside the common window")
    lagging = snapshot["net_lagging_slots_total"]["value"]
    delivered = sum(counts)
    return {
        "clients": clients,
        "slots": slots,
        "slot_duration_s": slot_duration,
        "elapsed_s": round(elapsed, 4),
        "page_slots": page_slots,
        "frames_delivered": delivered,
        "frames_shed": shed,
        "frames_per_s": round(delivered / elapsed, 1),
        "lagging_slots": lagging,
        "lagging_fraction": round(lagging / slots, 4),
    }


def run_once(clients: int, slots: int, slot_duration: float) -> dict:
    return asyncio.run(asyncio.wait_for(
        _run_once(clients, slots, slot_duration),
        timeout=slots * slot_duration * 10 + 30))


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--slots", type=int, default=1000)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="result JSON path (default: BENCH_net.json "
                             "at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny single-point run that only checks the "
                             "bench executes; writes no result file")
    args = parser.parse_args(argv)

    if args.smoke:
        entry = run_once(clients=5, slots=150, slot_duration=0.002)
        print(f"smoke: {entry['frames_delivered']} frames to "
              f"{entry['clients']} clients at "
              f"{entry['frames_per_s']}/s, "
              f"{entry['lagging_slots']} lagging slots")
        print("smoke ok")
        return 0

    fanout = []
    for clients in (10, 50, 200):
        entry = run_once(clients, args.slots, slot_duration=0.002)
        fanout.append(entry)
        print(f"fan-out {clients:>4} clients: "
              f"{entry['frames_per_s']:>9}/s, "
              f"lagging {entry['lagging_fraction']:.1%}")

    headroom = []
    for duration in (0.005, 0.002, 0.001, 0.0005):
        entry = run_once(50, args.slots, slot_duration=duration)
        headroom.append(entry)
        print(f"clock {duration * 1000:>4g} ms/slot @ 50 clients: "
              f"lagging {entry['lagging_fraction']:.1%}")
    sustainable = [e["slot_duration_s"] for e in headroom
                   if e["lagging_fraction"] < 0.10]

    payload = {
        "bench": "repro.net loopback fan-out + slot-clock headroom",
        "fanout": fanout,
        "clock_headroom": headroom,
        "min_sustainable_slot_duration_s": (
            min(sustainable) if sustainable else None),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
