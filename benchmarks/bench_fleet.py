"""Fleet scaling benchmark: client-slots per second at 10^4..10^6.

Drives :class:`repro.fleet.state.FleetState` directly — no engine, no
server — through a fixed number of broadcast slots against a cyclic
push program (deliver last slot's page, then generate this slot's
accesses), which isolates the struct-of-arrays population's own cost:
the per-slot due scan, the batched Zipf draws, absorption masks, and
waiter bookkeeping.  The headline number is ``client_slots_per_sec``
(population x slots / elapsed); ``accesses_per_sec`` tracks the
throughput of actual access processing, and the final ``snapshot()``
(per-user quantiles over the whole population) is timed separately.

Usage::

    python benchmarks/bench_fleet.py                   # 10^4..10^6
    python benchmarks/bench_fleet.py --clients 50000
    python benchmarks/bench_fleet.py --smoke           # CI: tiny, fast

Results land in ``BENCH_fleet.json`` at the repo root (``--out`` to
move them).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter
from typing import Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fleet.state import FleetState  # noqa: E402
from repro.workload.zipf import zipf_probabilities  # noqa: E402

DEFAULT_CLIENTS = "10000,100000,1000000"
DEFAULT_OUT = REPO_ROOT / "BENCH_fleet.json"
DB_SIZE = 1000
#: Mean accesses per slot is held at population / THINK_TIME, so larger
#: fleets stress both the O(N) due scan and the batched access path.
THINK_TIME = 1000.0


def make_fleet(num_clients: int, seed: int) -> FleetState:
    probs = zipf_probabilities(DB_SIZE, 0.95)
    return FleetState(
        num_clients=num_clients, mean_think_time=THINK_TIME,
        think_time_spread=0.5, zipf_offset_spread=50,
        cache_size=100, cache_size_spread=0.5, steady_state_perc=0.8,
        probabilities=probs,
        value_order=np.arange(DB_SIZE, dtype=np.int64),
        threshold=None, rng=np.random.default_rng(seed))


def bench_size(num_clients: int, slots: int, seed: int) -> dict:
    fleet = make_fleet(num_clients, seed)
    start = perf_counter()
    previous: Optional[int] = None
    for t in range(slots):
        if previous is not None:
            # Last slot's page completes at the boundary, exactly the
            # engines' call order (deliver then generate).
            fleet.deliver(previous, float(t))
        fleet.generate(t, t)
        previous = t % DB_SIZE
    elapsed = perf_counter() - start
    snap_start = perf_counter()
    snapshot = fleet.snapshot()
    snapshot_s = perf_counter() - snap_start
    return {
        "clients": num_clients,
        "slots": slots,
        "elapsed_s": round(elapsed, 4),
        "client_slots_per_sec": round(num_clients * slots / elapsed),
        "accesses_per_sec": round(fleet.generated / elapsed),
        "generated": fleet.generated,
        "delivered": fleet.delivered,
        "absorbed": fleet.absorbed_by_cache,
        "snapshot_s": round(snapshot_s, 4),
        "users_measured": snapshot["users_measured"],
        "jain_index": (None if snapshot["users_measured"] == 0
                       else round(snapshot["jain_index"], 4)),
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", default=DEFAULT_CLIENTS,
                        help="comma-separated population sizes "
                             f"(default: {DEFAULT_CLIENTS})")
    parser.add_argument("--slots", type=int, default=2000,
                        help="broadcast slots per size (default: 2000)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="result JSON path (default: BENCH_fleet.json "
                             "at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny single-size run that only checks the "
                             "bench executes; writes no result file")
    args = parser.parse_args(argv)
    if args.smoke:
        sizes, slots = [2000], 200
    else:
        sizes = [int(c) for c in args.clients.split(",")]
        slots = args.slots
    results = []
    for num_clients in sizes:
        entry = bench_size(num_clients, slots, args.seed)
        results.append(entry)
        print(f"{num_clients:>9} clients x {slots} slots: "
              f"{entry['client_slots_per_sec']:>12,} client-slots/s, "
              f"{entry['accesses_per_sec']:>9,} accesses/s, "
              f"snapshot {entry['snapshot_s']:.3f}s")
    if args.smoke:
        print("smoke ok")
        return 0
    payload = {
        "bench": "fleet client-slots throughput",
        "seed": args.seed,
        "db_size": DB_SIZE,
        "think_time": THINK_TIME,
        "sizes": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
