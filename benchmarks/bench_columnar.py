"""Columnar vs JSONL trace backend benchmark.

Synthesizes seeded request-lifecycle records, writes them through each
sink (``JsonlSink`` / ``ColumnarSink`` / ``MemorySink``), then times the
full read-and-analyze path both ways: JSONL readback (``json.loads`` per
line into record dataclasses, Python-loop breakdown, sorted-list
quantiles) against the memory-mapped columnar path
(``load_columnar`` + ``breakdown_of_array`` + ``exact_quantiles``).
Both paths must produce the identical ``WaitBreakdown`` — the benchmark
asserts it — so the speedup column compares equal work.

Usage::

    python benchmarks/bench_columnar.py                  # 10^4..10^6
    python benchmarks/bench_columnar.py --records 50000
    python benchmarks/bench_columnar.py --smoke          # CI: tiny, fast

Results land in ``BENCH_columnar.json`` at the repo root (``--out`` to
move them).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from time import perf_counter
from typing import Callable, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.columnar import (  # noqa: E402
    ColumnarSink,
    breakdown_of_array,
    exact_quantiles,
    load_columnar,
    measured_miss_waits,
)
from repro.obs.requests import (  # noqa: E402
    RequestRecord,
    breakdown_of,
    read_requests_jsonl,
)
from repro.obs.trace import JsonlSink, MemorySink  # noqa: E402

DEFAULT_RECORDS = "10000,100000,1000000"
DEFAULT_OUT = REPO_ROOT / "BENCH_columnar.json"


def synthesize(count: int, seed: int = 7) -> list[RequestRecord]:
    """``count`` seeded records shaped like a real IPP request trace."""
    rng = np.random.default_rng(seed)
    issued = np.cumsum(rng.exponential(2.0, count))
    pages = rng.integers(0, 500, count)
    measured = rng.random(count) > 0.1
    hits = rng.random(count) < 0.6
    served_pull = rng.random(count) < 0.5
    outcomes = rng.choice(["enqueued", "duplicate", "dropped"], count,
                          p=[0.9, 0.08, 0.02])
    predicted = np.round(rng.exponential(40.0, count), 3)
    never_pushed = rng.random(count) < 0.05
    queue_wait = np.round(rng.exponential(5.0, count), 3)
    offers = rng.integers(0, 4, count)
    records = []
    for i in range(count):
        if hits[i]:
            records.append(RequestRecord(
                index=i, page=int(pages[i]), issued_at=float(issued[i]),
                measured=bool(measured[i]), hit=True, pull_sent=False,
                pull_outcome=None, predicted_push_wait=None, page_offers=0,
                on_air_at=None, served_at=float(issued[i]),
                served_kind="cache", wait=0.0, queue_wait=None,
                service=None))
            continue
        pull = bool(served_pull[i])
        wait = float(queue_wait[i]) + 1.0
        records.append(RequestRecord(
            index=i, page=int(pages[i]), issued_at=float(issued[i]),
            measured=bool(measured[i]), hit=False, pull_sent=pull,
            pull_outcome=str(outcomes[i]) if pull else None,
            predicted_push_wait=(None if never_pushed[i]
                                 else float(predicted[i])),
            page_offers=int(offers[i]),
            on_air_at=float(issued[i] + queue_wait[i]),
            served_at=float(issued[i]) + wait,
            served_kind="pull" if pull else "push", wait=wait,
            queue_wait=float(queue_wait[i]), service=1.0))
    return records


def timed(fn: Callable):
    start = perf_counter()
    result = fn()
    return perf_counter() - start, result


def write_jsonl(records, path: Path) -> None:
    with JsonlSink(path) as sink:
        for record in records:
            sink.emit(record)


def write_columnar(records, path: Path) -> None:
    with ColumnarSink(path) as sink:
        for record in records:
            sink.emit(record)


def write_memory(records) -> MemorySink:
    sink = MemorySink()
    for record in records:
        sink.emit(record)
    return sink


def analyze_jsonl(path: Path):
    records = read_requests_jsonl(path)
    breakdown = breakdown_of(records)
    waits = sorted(r.wait for r in records if r.measured and not r.hit)
    n = len(waits)
    marks = {f"p{int(q * 100)}": waits[min(n - 1, int(q * n))]
             for q in (0.50, 0.90, 0.99)}
    return breakdown, marks


def analyze_columnar(path: Path):
    array = load_columnar(path)
    breakdown = breakdown_of_array(array)
    marks = exact_quantiles(measured_miss_waits(array))
    return breakdown, marks


def same_breakdown(a, b) -> bool:
    """Field-wise equality with float tolerance.

    numpy's pairwise summation and the Python loop's running sum differ
    in the last ulp on fractional synthetic waits; counts must still
    match exactly.
    """
    import dataclasses
    import math

    for field in dataclasses.fields(a):
        left = getattr(a, field.name)
        right = getattr(b, field.name)
        if isinstance(left, float):
            if not math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-9):
                return False
        elif left != right:
            return False
    return True


def bench_size(count: int, seed: int, workdir: Path) -> dict:
    records = synthesize(count, seed)
    jsonl = workdir / f"req_{count}.jsonl"
    npy = workdir / f"req_{count}.npy"
    jsonl_write, _ = timed(lambda: write_jsonl(records, jsonl))
    columnar_write, _ = timed(lambda: write_columnar(records, npy))
    memory_write, _ = timed(lambda: write_memory(records))
    jsonl_read, (jsonl_breakdown, jsonl_marks) = timed(
        lambda: analyze_jsonl(jsonl))
    columnar_read, (columnar_breakdown, columnar_marks) = timed(
        lambda: analyze_columnar(npy))
    if not same_breakdown(columnar_breakdown, jsonl_breakdown):
        raise AssertionError(
            f"backends disagree on the breakdown at {count} records")
    if columnar_marks != jsonl_marks:
        raise AssertionError(
            f"backends disagree on quantiles at {count} records")
    return {
        "records": count,
        "write_s": {"jsonl": round(jsonl_write, 4),
                    "columnar": round(columnar_write, 4),
                    "memory": round(memory_write, 4)},
        "read_analyze_s": {"jsonl": round(jsonl_read, 4),
                           "columnar_mmap": round(columnar_read, 4)},
        "file_bytes": {"jsonl": jsonl.stat().st_size,
                       "columnar": npy.stat().st_size},
        "speedup": {
            "read_analyze": round(jsonl_read / columnar_read, 1),
            "write": round(jsonl_write / columnar_write, 1),
            "bytes": round(jsonl.stat().st_size / npy.stat().st_size, 2),
        },
        "quantiles": {k: round(v, 3) for k, v in columnar_marks.items()},
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", default=DEFAULT_RECORDS,
                        help="comma-separated record counts "
                             f"(default: {DEFAULT_RECORDS})")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="result JSON path (default: BENCH_columnar"
                             ".json at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny single-size run that only checks the "
                             "bench executes; writes no result file")
    args = parser.parse_args(argv)
    counts = ([2000] if args.smoke
              else [int(c) for c in args.records.split(",")])
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        for count in counts:
            entry = bench_size(count, args.seed, Path(tmp))
            results.append(entry)
            print(f"{count:>9} records: read+analyze "
                  f"jsonl {entry['read_analyze_s']['jsonl']:.3f}s vs "
                  f"columnar {entry['read_analyze_s']['columnar_mmap']:.4f}s "
                  f"({entry['speedup']['read_analyze']}x)")
    if args.smoke:
        print("smoke ok")
        return 0
    payload = {
        "bench": "columnar vs JSONL request-trace backend",
        "seed": args.seed,
        "sizes": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
