"""Regenerate Figure 7 — restricting the push schedule (Experiment 3).

Shape assertions from Section 4.3:

- removed pages need pull bandwidth: with PullBW=10% response time blows
  up as pages are chopped;
- with adequate pull bandwidth and a threshold (7b), chopping *improves*
  performance on a lightly loaded system;
- Pure-Push and Pure-Pull are flat reference lines.
"""

from benchmarks.conftest import BENCH, run_once
from repro.experiments import figure_7


def test_figure_7a_no_threshold(benchmark, record_figure):
    figure = run_once(benchmark, lambda: figure_7(BENCH, thresh_perc=0.0))
    record_figure(figure)

    starved = figure.series_by_label("IPP PullBW 10%")
    ample = figure.series_by_label("IPP PullBW 50%")
    # Starved pull bandwidth cannot absorb the extra misses.
    assert starved.y[-1] > starved.y[0] * 2
    # Ample bandwidth keeps chopping survivable without a threshold.
    assert ample.y[-1] < starved.y[-1]
    # Reference lines are flat.
    for label in ("Push", "Pull"):
        assert len(set(figure.series_by_label(label).y)) == 1


def test_figure_7b_with_threshold(benchmark, record_figure):
    figure = run_once(benchmark, lambda: figure_7(BENCH, thresh_perc=0.35))
    record_figure(figure)

    ample = figure.series_by_label("IPP PullBW 50%")
    moderate = figure.series_by_label("IPP PullBW 30%")
    # The paper's headline: with PullBW=50% + threshold, dropping pages
    # *improves* response time (155 -> 63 units in the paper).
    assert ample.y[-1] < ample.y[0]
    # PullBW=30% also benefits from moderate chopping before the extra
    # misses catch up with it (crossover inside the axis).
    assert min(moderate.y) < moderate.y[0]
