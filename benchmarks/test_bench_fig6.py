"""Regenerate Figure 6 — thresholds for backchannel conservation
(Experiment 2).

Shape assertions from Section 4.2:

- at the lightest load, thresholds only delay clients (ThresPerc=0% wins
  among the IPP variants);
- under heavy load, higher thresholds win and extend the range of loads
  where IPP beats Pure-Push — the paper's "factor of two/three
  improvement in the number of clients that can be supported";
- with PullBW=30% the server saturates earlier, making ThresPerc=35% the
  best variant across most of the load axis.
"""

from benchmarks.conftest import BENCH, run_once
from repro.experiments import figure_6


def crossover_ttr(figure, label):
    """First load where the labelled series loses to Pure-Push."""
    push = figure.series_by_label("Push")
    series = figure.series_by_label(label)
    for x, y, push_y in zip(series.x, series.y, push.y):
        if y > push_y:
            return x
    return float("inf")


def test_figure_6a_pull_bw_50(benchmark, record_figure):
    figure = run_once(benchmark, lambda: figure_6(BENCH, pull_bw=0.50))
    record_figure(figure)

    no_thresh = figure.series_by_label("IPP ThresPerc 0%")
    thresh25 = figure.series_by_label("IPP ThresPerc 25%")
    # Light load: thresholds only constrain.
    assert no_thresh.y[0] < thresh25.y[0]
    # The 25% threshold extends IPP's winning range over no-threshold.
    assert crossover_ttr(figure, "IPP ThresPerc 25%") \
        >= crossover_ttr(figure, "IPP ThresPerc 0%")
    # Heavy load: thresholding beats flooding.
    assert thresh25.y[-1] < no_thresh.y[-1]


def test_figure_6b_pull_bw_30(benchmark, record_figure):
    figure = run_once(benchmark, lambda: figure_6(BENCH, pull_bw=0.30))
    record_figure(figure)

    no_thresh = figure.series_by_label("IPP ThresPerc 0%")
    thresh35 = figure.series_by_label("IPP ThresPerc 35%")
    # Scarcer pull bandwidth saturates earlier; the strong threshold wins
    # everywhere except the very lightest load.
    assert thresh35.y[-1] < no_thresh.y[-1]
    assert crossover_ttr(figure, "IPP ThresPerc 35%") \
        > crossover_ttr(figure, "IPP ThresPerc 0%")
