"""Regenerate Figure 8 — load sensitivity of restricted push (Experiment 3).

Shape assertions from Section 4.3:

- when the system is underutilized, chopping more pages helps (the
  deepest chop is fastest at the light end);
- once the server saturates, the ordering of the chopped programs
  inverts — the full program's safety net wins at the heavy end;
- the deepest chop (-700) loses even to Pure-Pull across the heavy end
  (push slots spent without a full safety net).
"""

from benchmarks.conftest import BENCH, run_once
from repro.experiments import figure_8


def test_figure_8(benchmark, record_figure):
    figure = run_once(benchmark, lambda: figure_8(BENCH))
    record_figure(figure)

    full = figure.series_by_label("IPP Full DB")
    deep = figure.series_by_label("IPP -700")
    # Lightly loaded (TTR=10..25): deeper chop is faster.
    assert deep.y[1] < full.y[1]
    # Saturated: the ordering inverts.
    assert deep.y[-1] > full.y[-1]
    # The deepest chop under saturation performs worse than Pure-Pull
    # (its push slots buy no safety net for the 700 missing pages).
    pull = figure.series_by_label("Pull")
    assert deep.y[-1] > pull.y[-1] * 0.8
