"""Micro-benchmarks of the substrates the simulation engines sit on.

These are conventional pytest-benchmark timings (many rounds) covering
the hot paths: schedule generation, distance-table construction, Zipf
sampling, cache churn, queue traffic, and raw engine throughput.
"""

import numpy as np

from repro.broadcast.program import DiskAssignment, build_schedule
from repro.cache.base import Cache
from repro.cache.pix import PixPolicy
from repro.core.algorithms import Algorithm
from repro.core.config import ClientConfig, RunConfig, ServerConfig, SystemConfig
from repro.core.fast import FastEngine
from repro.core.simulation import ReferenceEngine
from repro.server.queue import BoundedRequestQueue
from repro.workload.zipf import ZipfSampler, zipf_probabilities


def paper_assignment():
    return DiskAssignment.from_ranking(list(range(1000)), (100, 400, 500),
                                       (3, 2, 1))


def test_build_paper_schedule(benchmark):
    assignment = paper_assignment()
    schedule = benchmark(build_schedule, assignment)
    assert len(schedule) == 1608


def test_distance_table_construction(benchmark):
    def build():
        schedule = build_schedule(paper_assignment())
        return schedule.distance_table(1000)

    table = benchmark(build)
    assert table.shape == (1000, 1608)


def test_zipf_sampling_100k(benchmark):
    sampler = ZipfSampler(zipf_probabilities(1000, 0.95),
                          np.random.default_rng(0))
    draws = benchmark(sampler.sample, 100_000)
    assert draws.size == 100_000


def test_pix_cache_churn(benchmark):
    probs = zipf_probabilities(1000, 0.95)
    freqs = {p: (3 if p < 100 else 2 if p < 500 else 1)
             for p in range(1000)}
    pages = ZipfSampler(probs, np.random.default_rng(1)).sample(10_000)

    def churn():
        cache = Cache(100, PixPolicy(probs, freqs))
        hits = 0
        for page in pages:
            if cache.access(page):
                hits += 1
            else:
                cache.insert(page)
        return hits

    hits = benchmark(churn)
    assert hits > 0


def test_queue_traffic(benchmark):
    pages = np.random.default_rng(2).integers(0, 1000, 20_000).tolist()

    def traffic():
        queue = BoundedRequestQueue(100)
        for i, page in enumerate(pages):
            queue.offer(page)
            if i % 3 == 0 and len(queue):
                queue.pop()
        return queue.offers

    assert benchmark(traffic) == 20_000


def _small_system(algorithm):
    return SystemConfig(
        algorithm=algorithm,
        client=ClientConfig(cache_size=5, think_time=4.0,
                            think_time_ratio=5.0),
        server=ServerConfig(db_size=20, disk_sizes=(4, 6, 10),
                            rel_freqs=(3, 2, 1), queue_size=5),
        run=RunConfig(settle_accesses=100, measure_accesses=400, seed=1),
    )


def test_fast_engine_throughput(benchmark):
    result = benchmark(lambda: FastEngine(_small_system(Algorithm.IPP)).run())
    assert result.mc_misses > 0


def test_reference_engine_throughput(benchmark):
    result = benchmark(
        lambda: ReferenceEngine(_small_system(Algorithm.IPP)).run())
    assert result.mc_misses > 0


def test_fast_engine_traced_throughput(benchmark):
    """Tracing overhead: same run as test_fast_engine_throughput but with
    the slot tracer attached to a discarding sink.  Compare the two means
    to see what a record per slot costs."""
    from repro.obs.trace import NullSink, SlotTracer

    config = _small_system(Algorithm.IPP)

    def traced():
        return FastEngine(config, tracer=SlotTracer(NullSink())).run()

    result = benchmark(traced)
    assert result.mc_misses > 0


def test_fast_engine_request_traced_memory(benchmark):
    """Request-tracing overhead, in-memory sink: one record per measured
    access (far fewer than per-slot) plus the queue-observer wrapper.
    Compare against test_fast_engine_throughput for the attached cost and
    against test_fast_engine_traced_throughput for the per-slot tracer."""
    from repro.obs import MemorySink, RequestTracer

    config = _small_system(Algorithm.IPP)

    def traced():
        return FastEngine(config,
                          request_tracer=RequestTracer(MemorySink())).run()

    result = benchmark(traced)
    assert result.mc_misses > 0


def test_fast_engine_request_traced_jsonl(benchmark, tmp_path):
    """Request-tracing overhead with records serialized to JSONL — the
    worst case a user pays when tracing to disk."""
    from repro.obs import JsonlSink, RequestTracer

    config = _small_system(Algorithm.IPP)
    counter = iter(range(10_000_000))

    def traced():
        path = tmp_path / f"req_{next(counter)}.jsonl"
        with JsonlSink(path) as sink:
            return FastEngine(config,
                              request_tracer=RequestTracer(sink)).run()

    result = benchmark(traced)
    assert result.mc_misses > 0


def test_fast_engine_request_tracing_disabled(benchmark):
    """Guard: with no request tracer the general loop pays one hoisted
    boolean per access — this must stay indistinguishable from
    test_fast_engine_throughput (force_general isolates the loop choice)."""
    config = _small_system(Algorithm.IPP)

    def untraced():
        return FastEngine(config, force_general=True).run()

    result = benchmark(untraced)
    assert result.mc_misses > 0


def test_pure_push_analytic_throughput(benchmark):
    config = SystemConfig(algorithm=Algorithm.PURE_PUSH,
                          run=RunConfig(settle_accesses=500,
                                        measure_accesses=5000, seed=1))
    result = benchmark(lambda: FastEngine(config).run())
    assert result.mc_misses > 0
