"""Shared benchmark scaffolding.

Figure benchmarks regenerate every table/figure of the paper at a reduced
but shape-preserving scale (fewer measured accesses than the paper's 5000;
same load grids).  Each bench

1. runs the figure sweep exactly once under pytest-benchmark timing,
2. writes the rendered table to ``results/figure_<id>.txt`` (and JSON),
3. asserts the paper's qualitative shape on the regenerated series.

Run ``python -m repro figures --full`` for paper-scale sweeps.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.base import Profile
from repro.experiments.reporting import render_figure

#: Reduced-scale profile used by every figure bench.
BENCH = Profile(settle_accesses=250, measure_accesses=350, replicates=1,
                base_seed=11)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_figure(results_dir):
    """Persist a regenerated figure and echo its table."""

    def _record(figure):
        text = render_figure(figure, show_drop_rates=True)
        stem = figure.figure_id.split()[0].replace("(", "").replace(")", "")
        (results_dir / f"figure_{stem}.txt").write_text(text + "\n")
        (results_dir / f"figure_{stem}.json").write_text(
            json.dumps(figure.to_dict(), indent=2))
        print(f"\n{text}\n")
        return figure

    return _record


def run_once(benchmark, func):
    """Run a whole figure sweep exactly once under benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
