"""Regenerate Figure 3 — steady-state push/pull tradeoffs (Experiment 1).

Shape assertions from Section 4.1.1:

- Pure-Push is flat in ThinkTimeRatio;
- at light load the pull-based approaches beat Push by a wide margin;
- under saturation Pure-Pull ends above both Push and IPP (safety net);
- steady-state peers (95%) help the pull-based approaches;
- IPP tends toward Pure-Pull as PullBW grows.
"""

from benchmarks.conftest import BENCH, run_once
from repro.experiments import figure_3a, figure_3b


def test_figure_3a(benchmark, record_figure):
    figure = run_once(benchmark, lambda: figure_3a(BENCH))
    record_figure(figure)

    push = figure.series_by_label("Push")
    pull95 = figure.series_by_label("Pull 95%")
    pull0 = figure.series_by_label("Pull 0%")
    ipp95 = figure.series_by_label("IPP 95%")

    # Push is flat.
    assert len(set(push.y)) == 1
    # Light load: pull-based access is dramatically faster than push.
    assert pull95.y[0] < push.y[0] / 20
    # Saturation: Pure-Pull deteriorates past Pure-Push...
    assert pull95.y[-1] > push.y[-1]
    # ...and IPP levels out below Pure-Pull (the push safety net).
    assert ipp95.y[-1] < pull95.y[-1]
    # Warm peers help: the 95% curve dominates the 0% curve at the heavy
    # end of the load axis.
    assert pull95.y[-1] < pull0.y[-1]


def test_figure_3b(benchmark, record_figure):
    figure = run_once(benchmark, lambda: figure_3b(BENCH))
    record_figure(figure)

    pull = figure.series_by_label("Pull")
    ipp50 = figure.series_by_label("IPP PullBW 50%")
    ipp10 = figure.series_by_label("IPP PullBW 10%")

    # More pull bandwidth tracks Pure-Pull at light load.
    assert abs(ipp50.y[0] - pull.y[0]) < abs(ipp10.y[0] - pull.y[0])
    # PullBW=10% is sluggish even when the system is idle (§4.1.2): the
    # starved pull slots leave it near (or worse than) Pure-Push territory.
    assert ipp10.y[0] > ipp50.y[0] * 2
    # Every IPP variant undercuts Pure-Pull under saturation.
    for label in ("IPP PullBW 50%", "IPP PullBW 30%", "IPP PullBW 10%"):
        assert figure.series_by_label(label).y[-1] < pull.y[-1]
