"""Serial vs parallel lint-scan benchmark.

Times ``repro.lint.engine.run_lint`` over the real source tree with the
per-file pass serial (``jobs=1``) and fanned out over a process pool
(``--jobs``, default ``os.cpu_count()``).  Both scans must produce the
identical finding list — the benchmark asserts it — so the speedup
column compares equal work.  Project-level rules (REP004, REP006,
REP010) always run single-pass in the parent and are timed as part of
both scans, which keeps the reported speedup honest about Amdahl's
share rather than flattering the map step.

Usage::

    python benchmarks/bench_lint.py                # scan src/, 3 repeats
    python benchmarks/bench_lint.py --jobs 4
    python benchmarks/bench_lint.py --smoke        # CI: one tiny scan

Results land in ``BENCH_lint.json`` at the repo root (``--out`` to move
them).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from time import perf_counter
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.engine import run_lint  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_lint.json"


def scan(target: Path, jobs: int) -> tuple[float, "object"]:
    start = perf_counter()
    result = run_lint([target], jobs=jobs)
    return perf_counter() - start, result


def bench(target: Path, jobs: int, repeats: int) -> dict:
    serial_times, parallel_times = [], []
    serial = parallel = None
    for _ in range(repeats):
        elapsed, serial = scan(target, jobs=1)
        serial_times.append(elapsed)
        elapsed, parallel = scan(target, jobs=jobs)
        parallel_times.append(elapsed)
    assert serial is not None and parallel is not None
    if parallel.findings != serial.findings:
        raise AssertionError("parallel scan disagrees with serial scan")
    best_serial = min(serial_times)
    best_parallel = min(parallel_times)
    return {
        "target": str(target),
        "files": serial.files_scanned,
        "jobs": jobs,
        "repeats": repeats,
        "serial_s": round(best_serial, 4),
        "parallel_s": round(best_parallel, 4),
        "speedup": round(best_serial / best_parallel, 2),
        "findings": len(serial.findings),
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--target", type=Path, default=REPO_ROOT / "src",
                        help="tree to scan (default: src/)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count(),
                        help="parallel worker count (default: cpu count)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; best of N is reported")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="result JSON path (default: BENCH_lint.json "
                             "at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="one parity-checked scan of the lint package "
                             "only; writes no result file")
    args = parser.parse_args(argv)
    if args.jobs is None or args.jobs < 1:
        parser.error("--jobs must be a positive integer")
    if args.smoke:
        entry = bench(REPO_ROOT / "src" / "repro" / "lint", jobs=2,
                      repeats=1)
        print(f"smoke ok: {entry['files']} files, serial "
              f"{entry['serial_s']:.3f}s vs 2-way {entry['parallel_s']:.3f}s")
        return 0
    entry = bench(args.target, jobs=args.jobs, repeats=args.repeats)
    print(f"{entry['files']} files: serial {entry['serial_s']:.3f}s vs "
          f"{entry['jobs']}-way {entry['parallel_s']:.3f}s "
          f"({entry['speedup']}x)")
    payload = {
        "bench": "serial vs process-pool lint scan",
        "result": entry,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
