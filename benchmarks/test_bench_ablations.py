"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but direct tests of its design arguments:

- **Cache policy** — Section 2.1 argues replacement must be cost-based
  (PIX) rather than probability/recency-based; we pit PIX against P, LRU,
  and the online LIX on the Pure-Push system.
- **Offset** — Section 3.2's shifted program "is obtained by shifting
  these cached pages from the fastest disk to the slowest disk"; we
  measure the steady-state cost of skipping the transform.
- **Disk layout** — the square-root-rule search from
  :mod:`repro.analysis.bandwidth` against the paper's fixed 100/400/500
  split.
- **Adaptive control** — the future-work controller (§6) against static
  IPP across the load axis.
"""

from dataclasses import replace

from benchmarks.conftest import BENCH, run_once
from repro.analysis.bandwidth import optimal_disk_split
from repro.core.algorithms import Algorithm
from repro.core.adaptive import AdaptiveController, AdaptivePolicy
from repro.core.config import SystemConfig
from repro.core.fast import FastEngine
from repro.experiments.base import run_replicated
from repro.workload.zipf import zipf_probabilities


def push_config(**overrides):
    return SystemConfig(algorithm=Algorithm.PURE_PUSH).with_(**overrides)


#: Pure-Push runs take the analytic shortcut (milliseconds per run), so
#: the push-only ablations can afford paper-scale samples: the effects
#: being measured are a few percent, far below BENCH's noise floor.
PUSH_BENCH = replace(BENCH, settle_accesses=1000, measure_accesses=20_000,
                     replicates=3)


def test_cache_policy_ablation(benchmark, results_dir):
    """Cost-based replacement wins (Section 2.1 / [Acha95a]).

    Measured on the *all-access* mean (policies trade miss rate against
    miss cost, so miss-only means are misleading), on a steep-frequency
    non-offset program where refetch costs genuinely differ.  Under the
    paper's own offset 3:2:1 layout PIX and P coincide by construction —
    the offset transform moves every cache-worthy page to the slowest
    disk, which is itself an interesting reproduction finding (recorded
    in EXPERIMENTS.md).
    """

    def sweep():
        means = {}
        for policy in ("pix", "p", "lru", "lix"):
            config = push_config(client__cache_policy=policy,
                                 server__offset=False,
                                 server__rel_freqs=(12, 6, 1))
            means[policy] = run_replicated(
                config, PUSH_BENCH,
                metric=lambda r: r.response_all.mean).mean
        return means

    means = run_once(benchmark, sweep)
    lines = [f"{policy:>4}: {mean:8.1f} broadcast units (all accesses)"
             for policy, mean in means.items()]
    report = ("Cache policy ablation (Pure-Push, 12:6:1 non-offset "
              "program):\n" + "\n".join(lines))
    (results_dir / "ablation_cache_policy.txt").write_text(report + "\n")
    print(f"\n{report}\n")

    assert means["pix"] < means["p"]
    assert means["pix"] < means["lru"]
    assert means["pix"] < means["lix"]
    # The online LIX estimate stays in LRU's neighbourhood or better.
    assert means["lix"] < means["lru"] * 1.15


def test_offset_ablation(benchmark, results_dir):
    """The Offset program beats the naive hottest-first mapping."""

    def sweep():
        with_offset = run_replicated(push_config(), PUSH_BENCH).mean
        without = run_replicated(push_config(server__offset=False),
                                 PUSH_BENCH).mean
        return with_offset, without

    with_offset, without = run_once(benchmark, sweep)
    report = (f"Offset ablation (Pure-Push): offset={with_offset:.1f}, "
              f"no-offset={without:.1f} broadcast units")
    (results_dir / "ablation_offset.txt").write_text(report + "\n")
    print(f"\n{report}\n")
    assert with_offset < without


def test_disk_layout_ablation(benchmark, results_dir):
    """The square-root-rule layout search beats a flat (single-disk)
    broadcast and roughly matches the paper's hand-picked split."""

    def sweep():
        probs = zipf_probabilities(1000, 0.95)
        searched_sizes, _ = optimal_disk_split(probs, (3, 2, 1),
                                               granularity=100)
        results = {}
        results["paper 100/400/500"] = run_replicated(
            push_config(), PUSH_BENCH).mean
        results[f"searched {'/'.join(map(str, searched_sizes))}"] = (
            run_replicated(
                push_config(server__disk_sizes=tuple(searched_sizes)),
                PUSH_BENCH).mean)
        results["flat single disk"] = run_replicated(
            push_config(server__disk_sizes=(1000,), server__rel_freqs=(1,)),
            PUSH_BENCH).mean
        return results

    results = run_once(benchmark, sweep)
    lines = [f"{name:>24}: {mean:8.1f}" for name, mean in results.items()]
    report = "Disk layout ablation (Pure-Push):\n" + "\n".join(lines)
    (results_dir / "ablation_disk_layout.txt").write_text(report + "\n")
    print(f"\n{report}\n")

    flat = results["flat single disk"]
    assert all(mean < flat for name, mean in results.items()
               if name != "flat single disk")


def test_tuning_advisor(benchmark, results_dir):
    """The §6 parameter-setting tool at full scale: tuned for a wide load
    range, the advisor must pick a non-zero threshold (flooding the
    backchannel loses the worst-case objective once saturation is in
    range), matching Section 4.4's consistency argument."""
    from repro.tuning import TuningSpec, recommend

    spec = TuningSpec(loads=(10.0, 75.0, 250.0),
                      pull_bw_grid=(0.30, 0.50),
                      thresh_grid=(0.0, 0.35))

    report = run_once(
        benchmark,
        lambda: recommend(SystemConfig(algorithm=Algorithm.IPP), spec,
                          BENCH))
    text = report.format()
    (results_dir / "ablation_tuning.txt").write_text(text + "\n")
    print(f"\n{text}\n")

    assert report.best.thresh_perc > 0.0
    # Ranking is coherent: best worst-case really is the minimum.
    assert report.best.worst_case == min(
        c.worst_case for c in report.candidates)


def test_adaptive_controller_ablation(benchmark, results_dir):
    """The §6 adaptive controller tracks the better static setting on
    both ends of the load axis."""

    def sweep():
        rows = {}
        for ttr in (10, 250):
            base = SystemConfig(algorithm=Algorithm.IPP).with_(
                client__think_time_ratio=ttr, server__pull_bw=0.50)
            static = run_replicated(base, BENCH).mean
            config = BENCH.apply(base, BENCH.base_seed)
            controller = AdaptiveController(
                AdaptivePolicy(interval=2000, high_drop=0.05),
                pull_bw=0.50, thresh_perc=0.0)
            adaptive = FastEngine(
                config, controller=controller).run().response_miss.mean
            rows[ttr] = (static, adaptive)
        return rows

    rows = run_once(benchmark, sweep)
    lines = [f"TTR={ttr:>4}: static={static:8.1f}  adaptive={adaptive:8.1f}"
             for ttr, (static, adaptive) in rows.items()]
    report = "Adaptive control ablation (IPP PullBW=50%):\n" + "\n".join(lines)
    (results_dir / "ablation_adaptive.txt").write_text(report + "\n")
    print(f"\n{report}\n")

    light_static, light_adaptive = rows[10]
    heavy_static, heavy_adaptive = rows[250]
    # At light load the controller must not break responsiveness badly...
    assert light_adaptive < 100
    # ...and under saturation it must improve on the static setting.
    assert heavy_adaptive < heavy_static
