#!/usr/bin/env python3
"""Advanced Traveler Information System: warm-up matters most.

The paper motivates warm-up performance with ATIS (Section 4.1.3):
"motorists join the 'system' when they drive within range of the
information broadcast" — a driver entering coverage has an empty cache
and wants useful data *now*.

This example asks: for a road-segment information broadcast, how long
does a newly arrived motorist wait to assemble the hot set of traffic
pages, under each delivery algorithm, at rush hour (many cars) vs late
night (few cars)?

Run:
    python examples/traffic_info.py
"""

import sys

from repro import Algorithm, SystemConfig, simulate_warmup

#: Traffic scenario: 400 road segments, compact receiver cache, and the
#: broadcast carrying congestion/incident pages for the metro area.
SCENARIO = dict(
    client__cache_size=40,
    server__db_size=400,
    server__disk_sizes=(40, 160, 200),
    server__queue_size=40,
    server__pull_bw=0.50,
    run__max_slots=30_000_000,
)

#: Late night vs rush hour, expressed as the load the rest of the
#: motorist population puts on the uplink.
LOADS = {"late night": 10.0, "rush hour": 250.0}

#: The warm-up milestones to report (fractions of the hot set).
MILESTONES = (0.5, 0.9)


def warmup_report(algorithm: Algorithm, think_time_ratio: float) -> dict:
    config = SystemConfig(algorithm=algorithm).with_(
        client__think_time_ratio=think_time_ratio, **SCENARIO)
    result = simulate_warmup(config)
    assert result.warmup_times is not None
    return result.warmup_times


def main() -> int:
    print("ATIS warm-up: broadcast units until a joining motorist holds "
          "X% of the hot road segments\n")
    for load_name, ratio in LOADS.items():
        print(f"--- {load_name} (ThinkTimeRatio={ratio:g}) ---")
        header = f"{'algorithm':<11}" + "".join(
            f"{f'{m:.0%} warm':>12}" for m in MILESTONES)
        print(header)
        for algorithm in (Algorithm.PURE_PUSH, Algorithm.PURE_PULL,
                          Algorithm.IPP):
            times = warmup_report(algorithm, ratio)
            cells = "".join(
                f"{times.get(m, float('nan')):>12,.0f}" for m in MILESTONES)
            print(f"{algorithm.value:<11}{cells}")
        print()
    print("Expected shape (paper Figure 4): pull-based warm-up wins late "
          "at night;\nunder rush-hour saturation the ordering inverts and "
          "the periodic broadcast\n(push) gets new arrivals warm fastest.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
