#!/usr/bin/env python3
"""Capacity planning for a news-wire service: chopping, queueing theory,
and adaptive control.

A news wire pushes a 1000-article database.  Engineering wants to know:

1. Should the cold archive be dropped from the broadcast and served
   pull-only (the paper's Experiment 3)?  How does that interact with
   pull bandwidth?
2. What does textbook M/M/1/K queueing predict for the backchannel, and
   how far off is it (the paper's Section 5 critique)?
3. Can the server ride out a load spike by retuning itself (the paper's
   future-work idea, implemented here as an adaptive controller)?

Run:
    python examples/capacity_planning.py
"""

import sys

from repro import Algorithm, SystemConfig
from repro.analysis.queueing import MM1KQueue
from repro.core.adaptive import AdaptiveController, AdaptivePolicy
from repro.core.fast import FastEngine, simulate

RUN = dict(run__settle_accesses=400, run__measure_accesses=900)


def chopping_study() -> None:
    print("1) Chop the archive? (ThinkTimeRatio=25, ThresPerc=35%)")
    print(f"{'non-broadcast pages':>20} {'PullBW 30%':>11} {'PullBW 50%':>11}")
    for chop in (0, 300, 500, 700):
        row = [f"{chop:>20}"]
        for pull_bw in (0.30, 0.50):
            config = SystemConfig(algorithm=Algorithm.IPP).with_(
                client__think_time_ratio=25,
                server__pull_bw=pull_bw,
                server__thresh_perc=0.35,
                server__chop=chop,
                **RUN)
            row.append(f"{simulate(config).response_miss.mean:>11.1f}")
        print(" ".join(row))
    print("-> chopping pays off only when the pull slots can absorb the "
          "extra misses.\n")


def queueing_check() -> None:
    print("2) Does M/M/1/K describe the backchannel? (PullBW=50%)")
    print(f"{'TTR':>5} {'measured drop':>14} {'M/M/1/K blocking':>17}")
    for ttr in (25, 75, 250):
        config = SystemConfig(algorithm=Algorithm.IPP).with_(
            client__think_time_ratio=ttr, server__pull_bw=0.50, **RUN)
        result = simulate(config)
        offered = result.vc_generated - result.vc_absorbed
        lam = offered / result.measured_slots
        model = MM1KQueue(lam, 0.50, config.server.queue_size)
        print(f"{ttr:>5} {result.drop_rate:>14.2f} "
              f"{model.blocking_probability:>17.2f}")
    print("-> the real queue drops fewer requests than the memoryless "
          "model predicts:\n   duplicate suppression serves whole groups "
          "of clients with one slot,\n   exactly the paper's argument "
          "against an M/M/1 analysis.\n")


def adaptive_spike() -> None:
    print("3) Riding a load spike with the adaptive controller "
          "(future work, §6)")
    heavy = SystemConfig(algorithm=Algorithm.IPP).with_(
        client__think_time_ratio=200, server__pull_bw=0.50, **RUN)
    static = simulate(heavy)
    controller = AdaptiveController(
        AdaptivePolicy(interval=2000, high_drop=0.05),
        pull_bw=0.50, thresh_perc=0.0)
    adaptive = FastEngine(heavy, controller=controller).run()
    print(f"   static IPP (PullBW=50%, no threshold): "
          f"{static.response_miss.mean:.1f} units, "
          f"drop rate {static.drop_rate:.2f}")
    print(f"   adaptive IPP: {adaptive.response_miss.mean:.1f} units, "
          f"drop rate {adaptive.drop_rate:.2f}")
    print(f"   controller settled at PullBW={controller.pull_bw:.0%}, "
          f"ThresPerc={controller.thresh_perc:.0%} after "
          f"{len(controller.trace)} adjustments")
    return None


def main() -> int:
    chopping_study()
    queueing_check()
    adaptive_spike()
    return 0


if __name__ == "__main__":
    sys.exit(main())
