#!/usr/bin/env python3
"""Stock ticker dissemination: tuning IPP and coping with niche interests.

A quote server broadcasts 1000 symbols to a large trading-floor
population.  Most clients track the same blue-chip symbols (the aggregate
Zipf pattern the broadcast program is built for), but a derivatives desk
tracks an unusual basket — its access pattern *disagrees* with the
broadcast.  The paper models this disagreement with Noise (Section 4.1.4).

This example:

1. tunes IPP's PullBW/ThresPerc knobs for a mainstream client at the
   floor's load level, and
2. shows how the niche desk (Noise = 35%) fares under each algorithm —
   including IPP's safety-net advantage over Pure-Pull when the server
   saturates.

Run:
    python examples/stock_ticker.py
"""

import sys

from repro import Algorithm, SystemConfig, simulate

RUN = dict(run__settle_accesses=500, run__measure_accesses=1200)
FLOOR_LOAD = 75.0  # a moderately saturated quote server


def tune_ipp() -> None:
    print(f"Tuning IPP at ThinkTimeRatio={FLOOR_LOAD:g} "
          f"(mainstream client):")
    print(f"{'PullBW':>7} {'ThresPerc':>10} {'miss RT':>9} {'drops':>7}")
    best = None
    for pull_bw in (0.3, 0.5):
        for thresh in (0.0, 0.25, 0.35):
            config = SystemConfig(algorithm=Algorithm.IPP).with_(
                client__think_time_ratio=FLOOR_LOAD,
                server__pull_bw=pull_bw,
                server__thresh_perc=thresh,
                **RUN)
            result = simulate(config)
            print(f"{pull_bw:>7.0%} {thresh:>10.0%} "
                  f"{result.response_miss.mean:>9.1f} "
                  f"{result.drop_rate:>7.2f}")
            if best is None or result.response_miss.mean < best[0]:
                best = (result.response_miss.mean, pull_bw, thresh)
    assert best is not None
    print(f"-> best knob setting here: PullBW={best[1]:.0%}, "
          f"ThresPerc={best[2]:.0%} ({best[0]:.1f} broadcast units)\n")


def niche_desk() -> None:
    print("The derivatives desk (Noise=35%: its basket disagrees with the "
          "broadcast):")
    print(f"{'algorithm':<11} {'mainstream RT':>14} {'niche RT':>10} "
          f"{'penalty':>8}")
    for algorithm in (Algorithm.PURE_PUSH, Algorithm.PURE_PULL,
                      Algorithm.IPP):
        rts = []
        for noise in (0.0, 0.35):
            config = SystemConfig(algorithm=algorithm).with_(
                client__think_time_ratio=FLOOR_LOAD,
                client__noise=noise,
                server__pull_bw=0.5,
                server__thresh_perc=0.25,
                **RUN)
            rts.append(simulate(config).response_miss.mean)
        penalty = rts[1] / rts[0]
        print(f"{algorithm.value:<11} {rts[0]:>14.1f} {rts[1]:>10.1f} "
              f"{penalty:>8.2f}x")
    print("\nExpected shape (paper Figure 5): at this load the niche desk "
          "pays most\nunder pull-only access, while the periodic broadcast "
          "bounds how badly IPP\ncan treat it.")


def main() -> int:
    tune_ipp()
    niche_desk()
    return 0


if __name__ == "__main__":
    sys.exit(main())
