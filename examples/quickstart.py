#!/usr/bin/env python3
"""Quickstart: build a broadcast program and compare the three algorithms.

Reproduces, in miniature, the paper's core comparison (Figure 3a): at a
given client population size (ThinkTimeRatio), how do Pure-Push,
Pure-Pull, and Interleaved Push/Pull compare on mean response time?

Run:
    python examples/quickstart.py [think_time_ratio]
"""

import sys

from repro import Algorithm, SystemConfig, simulate
from repro.broadcast import Disk, DiskAssignment, build_schedule


def show_figure1_program() -> None:
    """Recreate the paper's Figure 1: seven pages on three disks."""
    pages = "abcdefg"
    assignment = DiskAssignment((
        Disk((0,), rel_freq=4),          # page a on the fastest disk
        Disk((1, 2), rel_freq=2),        # pages b, c
        Disk((3, 4, 5, 6), rel_freq=1),  # pages d..g on the slowest disk
    ))
    schedule = build_schedule(assignment)
    rendered = " ".join(pages[slot] for slot in schedule.slots)
    print("Figure 1 broadcast program (7 pages, speeds 4:2:1):")
    print(f"  major cycle = {rendered}")
    print(f"  page 'a' frequency: {schedule.frequency(0)}x per cycle, "
          f"expected delay {schedule.expected_delay(0):.1f} slots")
    print(f"  page 'g' frequency: {schedule.frequency(6)}x per cycle, "
          f"expected delay {schedule.expected_delay(6):.1f} slots")
    print()


def compare_algorithms(think_time_ratio: float) -> None:
    """Run the paper's three delivery algorithms on Table 3's system."""
    print(f"Comparing algorithms at ThinkTimeRatio={think_time_ratio:g} "
          f"(the virtual client generates requests like a population of "
          f"{think_time_ratio:g} clients)")
    print(f"{'algorithm':<11} {'miss RT':>9} {'all RT':>8} "
          f"{'miss rate':>9} {'drop rate':>9}")
    for algorithm in (Algorithm.PURE_PUSH, Algorithm.PURE_PULL,
                      Algorithm.IPP):
        config = SystemConfig(algorithm=algorithm).with_(
            client__think_time_ratio=think_time_ratio,
            server__pull_bw=0.50,
            run__settle_accesses=500,
            run__measure_accesses=1500,
        )
        result = simulate(config)
        print(f"{algorithm.value:<11} {result.response_miss.mean:>9.1f} "
              f"{result.response_all.mean:>8.1f} "
              f"{result.mc_miss_rate:>9.2f} {result.drop_rate:>9.2f}")
    print()
    print("Response times are in broadcast units (one page transmission).")
    print("Try a heavy load (e.g. 250) to watch Pure-Pull saturate while "
          "Pure-Push stays flat.")


def main() -> int:
    think_time_ratio = float(sys.argv[1]) if len(sys.argv) > 1 else 25.0
    show_figure1_program()
    compare_algorithms(think_time_ratio)
    return 0


if __name__ == "__main__":
    sys.exit(main())
