#!/usr/bin/env python3
"""Mobile receivers: what pull interleaving costs in battery life.

Footnote 2 of the paper: "Predictability may be important for certain
environments.  For example, in mobile networks, predictability of the
broadcast can be used to reduce power consumption."  A mobile client that
knows exactly when its page will fly by sleeps ("dozes") through the rest
of the broadcast; every pull response the server interleaves jitters the
program and forces the receiver to idle-listen.

This example combines the analytic doze model
(:mod:`repro.analysis.predictability`) with simulation: for a PDA tuned to
the Table 3 broadcast, how much of its waiting time can it sleep through
at each PullBW setting, and what does that cost in response time?

Run:
    python examples/mobile_power.py
"""

import sys

from repro import Algorithm, SystemConfig, simulate
from repro.analysis.predictability import doze_fraction, expected_awake_slots
from repro.core.build import build_system


def doze_study() -> None:
    config = SystemConfig(algorithm=Algorithm.IPP)
    state = build_system(config)
    schedule = state.schedule
    assert schedule is not None

    # A representative wait: the average program distance of a miss is
    # about half the major cycle for slowest-disk pages.
    sample_distances = {
        "fast-disk page": len(schedule) // 6 // 2,
        "slow-disk page": len(schedule) // 2,
    }
    print("Receiver doze model on the Table 3 program "
          f"({len(schedule)}-slot cycle):\n")
    print(f"{'PullBW':>7} {'busy?':>6} " + "".join(
        f"{name + ' doze%':>22}" for name in sample_distances))
    for pull_bw in (0.0, 0.1, 0.3, 0.5):
        for busy in (1.0,):
            cells = []
            for distance in sample_distances.values():
                fraction = doze_fraction(distance, pull_bw, busy)
                awake = expected_awake_slots(distance, pull_bw, busy)
                cells.append(f"{fraction:>14.1%} ({awake:,.0f} awake)")
            print(f"{pull_bw:>7.0%} {busy:>6.0%} " + "".join(
                f"{c:>22}" for c in cells))
    print()


def latency_cost() -> None:
    print("...and what giving up pull bandwidth costs in response time "
          "(TTR=25):")
    print(f"{'PullBW':>7} {'miss RT':>9}")
    for pull_bw in (0.0, 0.1, 0.3, 0.5):
        algorithm = Algorithm.PURE_PUSH if pull_bw == 0.0 else Algorithm.IPP
        config = SystemConfig(algorithm=algorithm).with_(
            client__think_time_ratio=25,
            server__pull_bw=pull_bw,
            server__thresh_perc=0.25,
            run__settle_accesses=400,
            run__measure_accesses=900,
        )
        result = simulate(config)
        print(f"{pull_bw:>7.0%} {result.response_miss.mean:>9.1f}")
    print("\nThe knob that buys interactive latency (PullBW) is the same "
          "knob that\nburns receiver battery — the dissemination designer "
          "must trade them off,\nexactly footnote 2's point.")


def main() -> int:
    doze_study()
    latency_cost()
    return 0


if __name__ == "__main__":
    sys.exit(main())
