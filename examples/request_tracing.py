#!/usr/bin/env python3
"""Request-lifecycle tracing: where does a client's wait actually go?

The paper reports *mean* response times.  The request tracer follows every
measured-client access through its lifecycle (issued -> miss -> pull sent
-> page on air -> served) and decomposes the wait into think time, push
wait, pull-queue wait, and on-air service — plus latency quantiles that
reveal the tail the means hide.

Run:
    python examples/request_tracing.py [think_time_ratio]
"""

import sys

from repro import Algorithm, SystemConfig
from repro.core.fast import FastEngine
from repro.obs import MemorySink, RequestTracer


def trace_one_run(think_time_ratio: float) -> None:
    """Trace an IPP run and print its wait decomposition."""
    config = SystemConfig(algorithm=Algorithm.IPP).with_(
        client__think_time_ratio=think_time_ratio,
        server__pull_bw=0.50,
        run__settle_accesses=500,
        run__measure_accesses=1500,
    )
    tracer = RequestTracer(MemorySink())
    result = FastEngine(config, request_tracer=tracer).run()

    print(f"IPP at ThinkTimeRatio={think_time_ratio:g}: "
          f"mean miss response {result.response_miss.mean:.1f} units")
    print()
    print("where the measured client's time went:")
    print(tracer.breakdown().render())
    print()

    quantiles = tracer.wait_quantiles()
    if quantiles is not None:
        print(f"miss wait quantiles: p50={quantiles['p50']:.1f}  "
              f"p90={quantiles['p90']:.1f}  p99={quantiles['p99']:.1f}  "
              f"(mean {result.response_miss.mean:.1f} — the tail the "
              f"mean hides)")
    print()


def inspect_slowest_requests(think_time_ratio: float) -> None:
    """Show the worst individual requests, end to end."""
    config = SystemConfig(algorithm=Algorithm.IPP).with_(
        client__think_time_ratio=think_time_ratio,
        server__pull_bw=0.50,
        run__settle_accesses=500,
        run__measure_accesses=1500,
    )
    tracer = RequestTracer(MemorySink())
    FastEngine(config, request_tracer=tracer).run()
    misses = sorted((r for r in tracer.sink.records
                     if r.measured and not r.hit),
                    key=lambda r: r.wait, reverse=True)

    print("three slowest requests (every event of each lifecycle):")
    for record in misses[:3]:
        pull = (f"pull {record.pull_outcome}" if record.pull_sent
                else "no pull (threshold)")
        print(f"  page {record.page:>4}: issued t={record.issued_at:.1f}, "
              f"{pull}, on air t={record.on_air_at:.1f} ({record.served_kind}"
              f" slot), served t={record.served_at:.1f} — waited "
              f"{record.wait:.1f} (queue {record.queue_wait:.1f} "
              f"+ service {record.service:.1f})")
    print()
    print("Each record also lands in JSONL via `repro-broadcast trace "
          "--requests`; summarize a saved trace with `repro-broadcast "
          "report --trace FILE`.")


def main() -> int:
    think_time_ratio = float(sys.argv[1]) if len(sys.argv) > 1 else 25.0
    trace_one_run(think_time_ratio)
    inspect_slowest_requests(think_time_ratio)
    return 0


if __name__ == "__main__":
    sys.exit(main())
