"""Legacy shim: the sandbox lacks the `wheel` package, so editable installs
must go through setuptools' develop command (pip --no-use-pep517)."""

from setuptools import setup

setup()
